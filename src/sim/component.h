// Base class for everything that advances with the NIC clock: routers,
// engines, RMT stages, traffic generators.
#pragma once

#include <string>

#include "common/units.h"

namespace panic {

class Simulator;

/// A clocked hardware block.  `tick()` is called once per simulated cycle;
/// a component reads inputs that became visible in earlier cycles and
/// produces outputs that become visible in later cycles (queues and links
/// carry ready-cycle timestamps, so ordering between components within one
/// cycle does not matter).
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }

  /// Advance one clock cycle.  `now` is the cycle being executed.
  virtual void tick(Cycle now) = 0;

 private:
  std::string name_;
};

}  // namespace panic
