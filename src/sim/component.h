// Base class for everything that advances with the NIC clock: routers,
// engines, RMT stages, traffic generators.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/units.h"
#include "telemetry/trace.h"

namespace panic {

namespace telemetry {
class Telemetry;
}  // namespace telemetry

class Simulator;

/// A clocked hardware block.  `tick()` is called once per simulated cycle;
/// a component reads inputs that became visible in earlier cycles and
/// produces outputs that become visible in later cycles (queues and links
/// carry ready-cycle timestamps, so ordering between components within one
/// cycle does not matter).
///
/// Activity contract (the quiescence/wake protocol): after each tick the
/// simulator asks `next_wake(now)` for the next cycle at which this
/// component must tick again *absent external input*:
///
///   * `now + 1`   — stay active (the default: dense, every-cycle ticking);
///   * a later cycle — sleep with a deadline (e.g. an engine mid-service
///     sleeps until the service completes, a traffic source until its next
///     injection time);
///   * `kNeverWake` — fully quiescent: tick again only when woken.
///
/// Anything that hands a quiescent component work — a NoC link delivering
/// a flit, a queue enqueue, a DMA completion, a scheduled injection — must
/// wake it through `request_wake`.  A correct implementation is therefore
/// conservative: when in doubt, return `now + 1`; a tick that finds nothing
/// to do must be an observable no-op, so spurious wake-ups are always safe,
/// while a missed wake-up stalls the component.  In strict-tick mode the
/// contract is ignored and every component ticks every cycle.
class Component {
 public:
  /// Sentinel for "quiescent until woken".
  static constexpr Cycle kNeverWake = std::numeric_limits<Cycle>::max();

  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }

  /// Advance one clock cycle.  `now` is the cycle being executed.
  virtual void tick(Cycle now) = 0;

  /// Next cycle at which tick() must run again absent external wake-ups.
  /// Consulted by the simulator immediately after tick(now) returns; the
  /// component inspects its own post-tick state.  See the class comment.
  virtual Cycle next_wake(Cycle now) const { return now + 1; }

  /// Requests that this component be ticked at cycle `at` (clamped into
  /// the simulator's present).  Safe to call from anywhere — other
  /// components, event callbacks, workload drivers, tests.  A no-op when
  /// the component is not registered with a simulator (manually ticked
  /// unit tests) or the simulator runs in strict-tick mode.
  void request_wake(Cycle at);

  /// True while this component is in the kernel's active set (it ticks
  /// every cycle until it parks again).  Producers whose target's
  /// next_wake re-discovers the handed-over work from the target's own
  /// state — a router scanning its input FIFOs, an NI scanning its eject
  /// queue — may elide request_wake on an awake target: the next tick (or
  /// the parking poll) sees the work anyway.  Do NOT elide for targets
  /// whose next_wake cannot see the hand-off (engines learn of arrivals
  /// only through the wake).  Always false in strict-tick mode and for
  /// unregistered components, where request_wake is a no-op anyway.
  bool kernel_awake() const { return awake_; }

  /// The simulator this component is registered with (nullptr if none).
  Simulator* simulator() const { return sim_; }

  /// Called once by Simulator::add.  Overrides publish this component's
  /// counters/histograms into `t.metrics()` (see DESIGN.md §Telemetry for
  /// the naming scheme) and must call the base implementation first: it
  /// binds the tracer so the `trace()` helper works.  Components that are
  /// never registered with a simulator (manually ticked unit tests) simply
  /// publish nothing.
  virtual void register_telemetry(telemetry::Telemetry& t);

 protected:
  /// The telemetry sink, once registered (nullptr before).
  telemetry::Telemetry* telemetry() const { return telemetry_; }
  telemetry::MessageTracer* tracer() const { return tracer_; }
  /// This component's interned name in the tracer (TraceEvent::where).
  std::uint16_t trace_tag() const { return trace_tag_; }

  /// Records a per-message trace event attributed to this component; a
  /// cheap no-op when tracing is off or the component is unregistered.
  void trace(telemetry::TraceEventKind kind, Cycle cycle, MessageId msg,
             std::uint32_t arg = 0) const {
    if (tracer_ != nullptr) tracer_->record(kind, cycle, msg, trace_tag_, arg);
  }

 private:
  friend class Simulator;

  std::string name_;
  Simulator* sim_ = nullptr;
  telemetry::Telemetry* telemetry_ = nullptr;
  telemetry::MessageTracer* tracer_ = nullptr;
  std::uint16_t trace_tag_ = 0;
  std::uint32_t slot_ = 0;  ///< registration index within the simulator
  bool awake_ = false;      ///< mirror of Slot::active (see kernel_awake)
};

}  // namespace panic
