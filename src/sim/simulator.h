// Event-driven simulation kernel with a dense-tick reference mode and a
// sharded parallel mode.
//
// The kernel advances a single global clock (the paper analyses the NIC at
// one core frequency, e.g. 500 MHz, §4.2).  Per executed cycle it first
// activates components whose wake-up is due, then fires any events
// scheduled for that cycle (DMA completions, timer expirations,
// packet-injection times), then ticks components once.
//
// Three modes:
//
//   * kEventDriven (default) — only *active* components tick.  After each
//     tick a component reports its next required cycle via
//     `Component::next_wake`; sleepers are parked in a wake queue and
//     anything handing work to a quiescent component wakes it through
//     `Component::request_wake`.  When the active set is empty the clock
//     fast-forwards to the next pending event or wake-up, so idle gaps in
//     bursty workloads cost no wall-clock time.
//   * kStrictTick — every registered component ticks every cycle (the
//     original dense kernel).  Wake bookkeeping is bypassed entirely.
//   * kParallelShards — the event kernel, spatially partitioned: each
//     component is assigned to a shard (Simulator::set_shard; by mesh
//     coordinates in the PANIC composition) and per executed cycle every
//     shard runs its slice of the tick loop on its own worker thread.
//     Components with no shard ("serial" components — watchdogs, workload
//     sources) tick on the coordinator after the parallel phase, matching
//     their registration-order position.  Cross-shard interactions are
//     conservative-synchronization exchanges at cycle boundaries: the NoC
//     stages boundary flits and credit returns during the parallel phase
//     and the kernel applies them between the barrier and the next cycle
//     (the 1-cycle link latency is the lookahead window).  See DESIGN.md
//     §"Sharded parallel kernel".
//
// All modes are cycle-identical: for every executed cycle the same events
// fire and the same non-no-op ticks run in the same registration order
// (quiescent components' ticks are observable no-ops by contract), so
// statistics and final cycle counts match exactly.  The equivalence is
// pinned by tests/sim/kernel_equivalence_test.cpp and the panic_fuzz
// three-way differential oracle.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <thread>
#include <vector>

#include "common/sim_mode.h"
#include "common/units.h"
#include "sim/component.h"
#include "telemetry/telemetry.h"

namespace panic {

class Simulator {
 public:
  /// `threads` is only meaningful in kParallelShards mode: the number of
  /// shards (== worker threads, the coordinator doubles as shard 0).
  /// 0 resolves through sim_threads() (--threads/PANIC_THREADS), falling
  /// back to min(hardware_concurrency, 8).  The count never changes
  /// simulation results, only how the tick loop is partitioned.
  explicit Simulator(Frequency clock = Frequency::megahertz(500),
                     SimMode mode = SimMode::kEventDriven, int threads = 0);
  ~Simulator();

  SimMode mode() const { return mode_; }

  /// Shard count (>= 1) in kParallelShards mode, 0 otherwise.
  int num_shards() const { return num_shards_; }

  /// The unified observability surface: every registered component's
  /// metrics plus the per-message tracer.  The kernel's own counters are
  /// published under "kernel.*".
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// Point-in-time copy of every metric — what benches and examples read
  /// instead of per-component getters.
  telemetry::MetricsSnapshot snapshot() const {
    return telemetry_.snapshot();
  }

  /// Registers a component.  The simulator does not own components; the
  /// NIC composition that creates them must outlive the simulator run.
  /// Newly added components start active (their first tick decides whether
  /// they sleep).
  void add(Component* c);

  /// Assigns `c` to shard `shard` (in [0, num_shards())); -1 reverts to
  /// serial.  Only meaningful in kParallelShards mode, and only before the
  /// first step: the shard map is sealed when the clock starts.  Serial
  /// components must occupy a registration-order suffix (checked at seal
  /// time) so the coordinator can tick them after the parallel phase in
  /// exactly their sequential position.
  void set_shard(Component* c, int shard);

  /// The shard `c` is assigned to, or -1 (serial / non-parallel mode).
  int shard_of(const Component* c) const {
    return slots_[c->slot_].shard;
  }

  /// Schedules `fn` to run at the start of `cycle`.  Events at the same
  /// cycle run in scheduling order.  A `cycle` in the past (or equal to
  /// the current cycle once the event phase has passed) is deterministic
  /// in all modes: the event fires at the start of the next executed
  /// cycle, and fast-forward never skips it — see
  /// tests/sim/simulator_test.cpp (LateEvent*).  Safe to call from a shard
  /// worker mid-tick: the request is staged per shard and merged in
  /// registration order at the barrier, reproducing the sequential
  /// scheduling order exactly.
  void schedule_at(Cycle cycle, std::function<void()> fn);

  /// Schedules `fn` to run `delay` cycles from now.
  void schedule_in(Cycles delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Activates `c` so it ticks at cycle `at` (clamped to the present; a
  /// component that already ticked this cycle is deferred to the next one,
  /// exactly when a dense tick would first observe the caller's effect).
  /// No-op in strict-tick mode.  In parallel mode a shard worker may only
  /// wake components of its own shard; cross-shard hand-offs go through
  /// the staged boundary exchange instead.
  void wake(Component* c, Cycle at);

  /// Registers a hook that runs on the coordinator right after the
  /// parallel phase barrier and before serial-suffix components tick —
  /// where the NoC delivers staged boundary flits, so everything a serial
  /// component (watchdog probes included) observes matches the sequential
  /// kernels.  Never invoked outside kParallelShards mode.
  void add_post_parallel_hook(std::function<void(Cycle)> fn) {
    post_parallel_hooks_.push_back(std::move(fn));
  }

  /// Registers a hook that runs at the very end of every executed cycle,
  /// after all ticks, in every mode — where the NoC applies staged credit
  /// returns (credits freed by a pop become visible the next cycle, making
  /// intra-cycle component order immaterial).
  void add_end_of_cycle_hook(std::function<void(Cycle)> fn) {
    end_of_cycle_hooks_.push_back(std::move(fn));
  }

  Cycle now() const { return now_; }
  Frequency clock() const { return clock_; }
  double now_ns() const { return clock_.cycles_to_ns(now_); }

  /// Runs exactly `cycles` cycles.
  void run(Cycles cycles);

  /// Runs until `done()` returns true or `max_cycles` elapse.  Returns
  /// true if the predicate fired.  The predicate is polled once per
  /// *executed* cycle; cycles skipped by fast-forward cannot change its
  /// value because no component runs in them.
  bool run_until(const std::function<bool()>& done, Cycles max_cycles);

  /// Executes one cycle: due wake-ups, pending events for `now`, then
  /// component ticks.  Never fast-forwards (single-stepping tests rely on
  /// one call == one cycle).
  void step();

  // --- Kernel counters (work accounting for benches and tests). ---
  std::uint64_t events_executed() const { return events_executed_; }
  /// Total Component::tick invocations across the run (sums the per-shard
  /// cells in parallel mode).
  std::uint64_t component_ticks() const;
  /// Transitions of a component from quiescent to active.
  std::uint64_t wakeups() const;
  /// Cycles skipped without executing (empty active set, no due work).
  std::uint64_t fast_forwarded_cycles() const { return fast_forwarded_; }
  /// Number of currently active components.
  std::size_t active_components() const;

 private:
  struct Event {
    Cycle cycle;
    std::uint64_t seq;  // FIFO order within a cycle
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.cycle != b.cycle) return a.cycle > b.cycle;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    Component* c = nullptr;
    bool active = false;
    /// Owning shard (-1 = serial); only used in kParallelShards mode.
    std::int16_t shard = -1;
    /// Earliest future wake-up already queued for this slot (dedups heap
    /// pushes; stale heap entries are ignored on pop).
    Cycle pending_wake = Component::kNeverWake;
    /// Earliest wake requested while the slot was ACTIVE.  Hot components
    /// re-arming themselves (a router on every accepted flit) coalesce
    /// here — two loads and a store — instead of churning the wake heap;
    /// the value is folded into the post-tick sleep decision and cleared.
    Cycle pending_request = Component::kNeverWake;
    /// Consecutive ticks without sleeping; drives the hot-slot poll skip
    /// in finish_tick.  A pure function of the slot's own tick history, so
    /// it is identical across shard layouts.
    std::uint32_t streak = 0;
  };
  struct Wake {
    Cycle cycle;
    std::uint32_t slot;
  };
  struct WakeOrder {
    bool operator()(const Wake& a, const Wake& b) const {
      return a.cycle > b.cycle;
    }
  };

  /// Calendar wake queue: near wake-ups (within kWheelSpan cycles) land in
  /// a timing wheel — O(1) push, O(1) amortized drain — and far ones in a
  /// binary heap.  Under saturation nearly every sleep is shorter than the
  /// wheel span, so the ~2-per-cycle heap push/pop pairs the all-heap
  /// queue paid collapse into vector appends; the long idle-gap sleeps of
  /// bursty workloads are rare and keep heap behaviour.  Fast-forward
  /// never skips a due bucket: the kernel only jumps to next_cycle(), the
  /// exact minimum, so no pending wake can lie inside a skipped range.
  class WakeQueue {
   public:
    static constexpr Cycle kWheelSpan = 64;  // power of two

    /// `now` decides wheel vs heap; `w.cycle` must be > all prior drain
    /// cycles (the kernel only queues future wakes).
    void push(const Wake& w, Cycle now) {
      ++size_;
      if (w.cycle - now < kWheelSpan) {
        wheel_[w.cycle & (kWheelSpan - 1)].push_back(w);
      } else {
        far_.push(w);
      }
    }

    bool empty() const { return size_ == 0; }

    /// Exact earliest pending cycle; Component::kNeverWake when empty.
    /// O(span) — consulted on fast-forward decisions only, never in the
    /// saturated per-cycle path.
    Cycle next_cycle() const {
      Cycle t = Component::kNeverWake;
      if (!far_.empty()) t = far_.top().cycle;
      for (const auto& bucket : wheel_) {
        for (const Wake& w : bucket) {
          if (w.cycle < t) t = w.cycle;
        }
      }
      return t;
    }

    /// Invokes fn(Wake) for every wake due at or before `now`, removing
    /// it.  `now` must be monotone across calls and every executed cycle
    /// must call this once (the wheel bucket of each cycle is inspected
    /// exactly when that cycle runs).
    template <typename Fn>
    void drain_due(Cycle now, Fn&& fn) {
      if (size_ == 0) return;
      auto& bucket = wheel_[now & (kWheelSpan - 1)];
      std::size_t keep = 0;
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].cycle <= now) {
          --size_;
          fn(bucket[i]);
        } else {
          bucket[keep++] = bucket[i];
        }
      }
      bucket.resize(keep);
      while (!far_.empty() && far_.top().cycle <= now) {
        const Wake w = far_.top();
        far_.pop();
        --size_;
        fn(w);
      }
    }

    /// Removes and returns every pending wake (seal-time re-homing).
    std::vector<Wake> drain_all() {
      std::vector<Wake> out;
      out.reserve(size_);
      for (auto& bucket : wheel_) {
        out.insert(out.end(), bucket.begin(), bucket.end());
        bucket.clear();
      }
      while (!far_.empty()) {
        out.push_back(far_.top());
        far_.pop();
      }
      size_ = 0;
      return out;
    }

   private:
    std::array<std::vector<Wake>, kWheelSpan> wheel_;
    std::priority_queue<Wake, std::vector<Wake>, WakeOrder> far_;
    std::size_t size_ = 0;
  };

  /// An event scheduled from inside a shard worker's tick.  Merged into
  /// the global queue at the barrier, ordered by (scheduling slot, per-
  /// slot sequence) — the order the sequential tick loop would have pushed
  /// them in.
  struct StagedEvent {
    std::uint32_t slot;
    std::uint64_t seq;
    Cycle cycle;
    std::function<void()> fn;
  };

  /// Per-shard kernel state.  Heap-allocated once in the constructor so
  /// the telemetry cells have stable addresses; only the owning worker
  /// touches the hot fields during the parallel phase.
  struct ShardState {
    int index = 0;
    std::vector<std::uint32_t> slots;  ///< this shard's slots, ascending
    WakeQueue wake_queue;
    std::size_t active_count = 0;
    std::uint32_t current_slot = 0;  ///< valid during the parallel phase
    std::uint64_t ticks = 0;         ///< per-shard kernel.component_ticks cell
    std::uint64_t wakeups = 0;       ///< per-shard kernel.wakeups cell
    std::vector<StagedEvent> staged_events;
    std::uint64_t staged_seq = 0;
  };

  enum class Phase : std::uint8_t { kIdle, kEvents, kTick };

  /// finish_tick keeps a component active (no-op ticks) rather than
  /// parking it when its next wake is at most this many cycles away; see
  /// the comment in finish_tick for the cost model.
  static constexpr Cycles kLingerWindow = 8;
  /// After this many consecutive ticks a slot counts as hot and its
  /// next_wake poll runs only every kHotStreak-th tick (power of two).
  static constexpr std::uint32_t kHotStreak = 16;

  /// The shard owning `s`'s bookkeeping once sealed (nullptr = serial).
  ShardState* owner_shard(const Slot& s) {
    return (sealed_ && s.shard >= 0) ? shards_[s.shard].get() : nullptr;
  }

  void wake_slot(std::uint32_t slot, Cycle at);
  void activate(std::uint32_t slot);
  void push_wake(WakeQueue& q, std::uint32_t slot, Cycle cycle);
  void drain_due_wakes(WakeQueue& q, std::size_t& active_count,
                       std::uint64_t& wakeups);
  /// Earliest cycle with pending work (event or wake-up); kNeverWake if none.
  Cycle next_scheduled_cycle() const;
  bool can_fast_forward() const {
    return mode_ != SimMode::kStrictTick && active_components() == 0;
  }
  /// Jumps the clock to the next pending work, capped at `limit`.
  void fast_forward_to(Cycle limit);

  void run_events_phase();
  void run_end_of_cycle();
  /// Post-tick sleep decision shared by all event-driven tick loops: folds
  /// coalesced wake requests into the component's own next_wake answer.
  void finish_tick(std::uint32_t slot, Cycle now, std::size_t& active_count,
                   WakeQueue& wq);

  // --- Parallel-mode machinery. ---
  void seal_shards();
  void step_parallel();
  void run_shard_phase(ShardState& ss);
  void merge_staged_events();
  void worker_main(int shard_index);
  void stop_workers();

  Frequency clock_;
  SimMode mode_;
  telemetry::Telemetry telemetry_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t component_ticks_ = 0;  ///< serial contexts' cell
  std::uint64_t wakeups_ = 0;          ///< serial contexts' cell
  std::uint64_t fast_forwarded_ = 0;

  std::vector<Component*> components_;  // registration order (slot order)
  std::vector<Slot> slots_;
  /// Count of serial (unsharded) slots with active == true.  The active
  /// set itself lives in the per-slot flags: the tick loop scans slots in
  /// order (matching the strict-mode tick order) instead of maintaining a
  /// node-based set, keeping wake/sleep churn allocation-free.
  std::size_t active_count_ = 0;
  WakeQueue wake_queue_;  ///< serial slots' wake heap
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;

  std::vector<std::function<void(Cycle)>> post_parallel_hooks_;
  std::vector<std::function<void(Cycle)>> end_of_cycle_hooks_;

  Phase phase_ = Phase::kIdle;
  std::uint32_t current_slot_ = 0;  ///< valid only during Phase::kTick

  // --- kParallelShards state. ---
  int num_shards_ = 0;
  bool sealed_ = false;
  bool any_sharded_ = false;  ///< false => degenerate sequential execution
  /// First slot ticked by the coordinator after the parallel phase (==
  /// slots_.size() when every slot is sharded).  Sharded slots occupy
  /// [0, first_serial_slot_), serial slots the rest.
  std::uint32_t first_serial_slot_ = 0;
  std::vector<std::unique_ptr<ShardState>> shards_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> workers_done_{0};
  std::atomic<bool> stopping_{false};

  /// The shard context of the calling thread during the parallel phase
  /// (nullptr on the coordinator outside it, and always in serial modes).
  static thread_local ShardState* tls_shard_;
};

}  // namespace panic
