// Event-driven simulation kernel with a dense-tick reference mode.
//
// The kernel advances a single global clock (the paper analyses the NIC at
// one core frequency, e.g. 500 MHz, §4.2).  Per executed cycle it first
// activates components whose wake-up is due, then fires any events
// scheduled for that cycle (DMA completions, timer expirations,
// packet-injection times), then ticks components once.
//
// Two modes:
//
//   * kEventDriven (default) — only *active* components tick.  After each
//     tick a component reports its next required cycle via
//     `Component::next_wake`; sleepers are parked in a wake queue and
//     anything handing work to a quiescent component wakes it through
//     `Component::request_wake`.  When the active set is empty the clock
//     fast-forwards to the next pending event or wake-up, so idle gaps in
//     bursty workloads cost no wall-clock time.
//   * kStrictTick — every registered component ticks every cycle (the
//     original dense kernel).  Wake bookkeeping is bypassed entirely.
//
// Both modes are cycle-identical: for every executed cycle the same events
// fire and the same non-no-op ticks run in the same registration order
// (quiescent components' ticks are observable no-ops by contract), so
// statistics and final cycle counts match exactly.  The equivalence is
// pinned by tests/sim/kernel_equivalence_test.cpp.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/component.h"
#include "telemetry/telemetry.h"

namespace panic {

/// Kernel scheduling discipline.
enum class SimMode : std::uint8_t {
  kEventDriven,  ///< tick only active components; fast-forward idle gaps
  kStrictTick,   ///< tick every component every cycle (reference mode)
};

class Simulator {
 public:
  explicit Simulator(Frequency clock = Frequency::megahertz(500),
                     SimMode mode = SimMode::kEventDriven);

  SimMode mode() const { return mode_; }

  /// The unified observability surface: every registered component's
  /// metrics plus the per-message tracer.  The kernel's own counters are
  /// published under "kernel.*".
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// Point-in-time copy of every metric — what benches and examples read
  /// instead of per-component getters.
  telemetry::MetricsSnapshot snapshot() const {
    return telemetry_.snapshot();
  }

  /// Registers a component.  The simulator does not own components; the
  /// NIC composition that creates them must outlive the simulator run.
  /// Newly added components start active (their first tick decides whether
  /// they sleep).
  void add(Component* c);

  /// Schedules `fn` to run at the start of `cycle`.  Events at the same
  /// cycle run in scheduling order.  A `cycle` in the past (or equal to
  /// the current cycle once the event phase has passed) is deterministic
  /// in both modes: the event fires at the start of the next executed
  /// cycle, and fast-forward never skips it — see
  /// tests/sim/simulator_test.cpp (LateEvent*).
  void schedule_at(Cycle cycle, std::function<void()> fn);

  /// Schedules `fn` to run `delay` cycles from now.
  void schedule_in(Cycles delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Activates `c` so it ticks at cycle `at` (clamped to the present; a
  /// component that already ticked this cycle is deferred to the next one,
  /// exactly when a dense tick would first observe the caller's effect).
  /// No-op in strict-tick mode.
  void wake(Component* c, Cycle at);

  Cycle now() const { return now_; }
  Frequency clock() const { return clock_; }
  double now_ns() const { return clock_.cycles_to_ns(now_); }

  /// Runs exactly `cycles` cycles.
  void run(Cycles cycles);

  /// Runs until `done()` returns true or `max_cycles` elapse.  Returns
  /// true if the predicate fired.  The predicate is polled once per
  /// *executed* cycle; cycles skipped by fast-forward cannot change its
  /// value because no component runs in them.
  bool run_until(const std::function<bool()>& done, Cycles max_cycles);

  /// Executes one cycle: due wake-ups, pending events for `now`, then
  /// component ticks.  Never fast-forwards (single-stepping tests rely on
  /// one call == one cycle).
  void step();

  // --- Kernel counters (work accounting for benches and tests). ---
  std::uint64_t events_executed() const { return events_executed_; }
  /// Total Component::tick invocations across the run.
  std::uint64_t component_ticks() const { return component_ticks_; }
  /// Transitions of a component from quiescent to active.
  std::uint64_t wakeups() const { return wakeups_; }
  /// Cycles skipped without executing (empty active set, no due work).
  std::uint64_t fast_forwarded_cycles() const { return fast_forwarded_; }
  /// Number of currently active components.
  std::size_t active_components() const {
    return mode_ == SimMode::kStrictTick ? slots_.size() : active_count_;
  }

 private:
  struct Event {
    Cycle cycle;
    std::uint64_t seq;  // FIFO order within a cycle
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.cycle != b.cycle) return a.cycle > b.cycle;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    Component* c = nullptr;
    bool active = false;
    /// Earliest future wake-up already queued for this slot (dedups heap
    /// pushes; stale heap entries are ignored on pop).
    Cycle pending_wake = Component::kNeverWake;
  };
  struct Wake {
    Cycle cycle;
    std::uint32_t slot;
  };
  struct WakeOrder {
    bool operator()(const Wake& a, const Wake& b) const {
      return a.cycle > b.cycle;
    }
  };

  enum class Phase : std::uint8_t { kIdle, kEvents, kTick };

  void wake_slot(std::uint32_t slot, Cycle at);
  void activate(std::uint32_t slot);
  void push_wake(std::uint32_t slot, Cycle cycle);
  /// Earliest cycle with pending work (event or wake-up); kNeverWake if none.
  Cycle next_scheduled_cycle() const;
  bool can_fast_forward() const {
    return mode_ == SimMode::kEventDriven && active_count_ == 0;
  }
  /// Jumps the clock to the next pending work, capped at `limit`.
  void fast_forward_to(Cycle limit);

  Frequency clock_;
  SimMode mode_;
  telemetry::Telemetry telemetry_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t component_ticks_ = 0;
  std::uint64_t wakeups_ = 0;
  std::uint64_t fast_forwarded_ = 0;

  std::vector<Component*> components_;  // registration order (slot order)
  std::vector<Slot> slots_;
  /// Count of slots with active == true.  The active set itself lives in
  /// the per-slot flags: the tick loop scans slots in order (matching the
  /// strict-mode tick order) instead of maintaining a node-based set,
  /// keeping wake/sleep churn allocation-free.
  std::size_t active_count_ = 0;
  std::priority_queue<Wake, std::vector<Wake>, WakeOrder> wake_queue_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;

  Phase phase_ = Phase::kIdle;
  std::uint32_t current_slot_ = 0;  ///< valid only during Phase::kTick
};

}  // namespace panic
