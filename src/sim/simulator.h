// Cycle-driven simulation kernel.
//
// The kernel advances a single global clock (the paper analyses the NIC at
// one core frequency, e.g. 500 MHz, §4.2).  Per cycle it first fires any
// events scheduled for that cycle (DMA completions, timer expirations,
// packet-injection times), then ticks every registered component once.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"
#include "sim/component.h"

namespace panic {

class Simulator {
 public:
  explicit Simulator(Frequency clock = Frequency::megahertz(500))
      : clock_(clock) {}

  /// Registers a component to be ticked every cycle.  The simulator does not
  /// own components; the NIC composition that creates them must outlive the
  /// simulator run.
  void add(Component* c) { components_.push_back(c); }

  /// Schedules `fn` to run at the start of `cycle` (>= now, else runs next
  /// processed cycle).  Events at the same cycle run in scheduling order.
  void schedule_at(Cycle cycle, std::function<void()> fn);

  /// Schedules `fn` to run `delay` cycles from now.
  void schedule_in(Cycles delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  Cycle now() const { return now_; }
  Frequency clock() const { return clock_; }
  double now_ns() const { return clock_.cycles_to_ns(now_); }

  /// Runs exactly `cycles` cycles.
  void run(Cycles cycles);

  /// Runs until `done()` returns true or `max_cycles` elapse.  Returns true
  /// if the predicate fired.
  bool run_until(const std::function<bool()>& done, Cycles max_cycles);

  /// Executes one cycle: pending events for `now`, then all component ticks.
  void step();

  std::uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    Cycle cycle;
    std::uint64_t seq;  // FIFO order within a cycle
    std::function<void()> fn;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.cycle != b.cycle) return a.cycle > b.cycle;
      return a.seq > b.seq;
    }
  };

  Frequency clock_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::vector<Component*> components_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> events_;
};

}  // namespace panic
