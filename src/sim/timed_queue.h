// A queue whose elements become visible only after a per-element ready
// cycle.  This is the primitive that gives links and pipelines their
// latency without requiring two-phase component ticking: a producer pushes
// at cycle t with latency L, and the consumer cannot pop it before t+L.
//
// Storage is a ring buffer (common/ring_buffer.h), not a deque: bounded
// queues never allocate after construction, and unbounded queues grow by
// doubling, so the steady-state simulation loop performs no allocations
// (deques allocate/free blocks continuously as elements flow through).
#pragma once

#include <cassert>
#include <cstddef>
#include <limits>
#include <optional>
#include <utility>

#include "common/ring_buffer.h"
#include "common/units.h"

namespace panic {

template <typename T>
class TimedQueue {
 public:
  /// `capacity` bounds the number of in-flight elements (0 = unbounded;
  /// the ring then starts small and doubles as needed).
  explicit TimedQueue(std::size_t capacity = 0)
      : capacity_(capacity),
        items_(capacity != 0 ? capacity : kUnboundedInitialSlots) {}

  bool full() const { return capacity_ != 0 && items_.size() >= capacity_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Deepest the queue has ever been.  For unbounded queues this is the
  /// growth telemetry surfaced per registered queue in sim.snapshot().
  std::size_t high_watermark() const { return high_watermark_; }

  /// Pushes `value`, visible to the consumer at `ready` or later.
  /// FIFO order is preserved even if ready cycles are non-monotonic: an
  /// element is poppable only when it is at the head AND ready.
  bool try_push(T value, Cycle ready) {
    if (full()) return false;
    if (items_.full()) items_.grow(items_.capacity() * 2);  // unbounded only
    items_.push(Item{std::move(value), ready});
    if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    return true;
  }

  /// True if the head element exists and is ready at `now`.
  bool ready(Cycle now) const {
    return !items_.empty() && items_.front().ready <= now;
  }

  /// Peeks the head element if ready.
  const T* peek(Cycle now) const {
    return ready(now) ? &items_.front().value : nullptr;
  }

  /// Pops the head element if ready.
  std::optional<T> try_pop(Cycle now) {
    if (!ready(now)) return std::nullopt;
    return items_.pop().value;
  }

  /// Cycle at which the head element becomes ready (max if empty).
  Cycle next_ready() const {
    return items_.empty() ? std::numeric_limits<Cycle>::max()
                          : items_.front().ready;
  }

  void clear() { items_.clear(); }

 private:
  static constexpr std::size_t kUnboundedInitialSlots = 8;

  struct Item {
    T value;
    Cycle ready;
  };
  std::size_t capacity_;
  RingBuffer<Item> items_;
  std::size_t high_watermark_ = 0;
};

}  // namespace panic
