// A queue whose elements become visible only after a per-element ready
// cycle.  This is the primitive that gives links and pipelines their
// latency without requiring two-phase component ticking: a producer pushes
// at cycle t with latency L, and the consumer cannot pop it before t+L.
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "common/units.h"

namespace panic {

template <typename T>
class TimedQueue {
 public:
  /// `capacity` bounds the number of in-flight elements (0 = unbounded).
  explicit TimedQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  bool full() const { return capacity_ != 0 && items_.size() >= capacity_; }
  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Pushes `value`, visible to the consumer at `ready` or later.
  /// FIFO order is preserved even if ready cycles are non-monotonic: an
  /// element is poppable only when it is at the head AND ready.
  bool try_push(T value, Cycle ready) {
    if (full()) return false;
    items_.push_back(Item{std::move(value), ready});
    return true;
  }

  /// True if the head element exists and is ready at `now`.
  bool ready(Cycle now) const {
    return !items_.empty() && items_.front().ready <= now;
  }

  /// Peeks the head element if ready.
  const T* peek(Cycle now) const {
    return ready(now) ? &items_.front().value : nullptr;
  }

  /// Pops the head element if ready.
  std::optional<T> try_pop(Cycle now) {
    if (!ready(now)) return std::nullopt;
    T value = std::move(items_.front().value);
    items_.pop_front();
    return value;
  }

  /// Cycle at which the head element becomes ready (max if empty).
  Cycle next_ready() const {
    return items_.empty() ? std::numeric_limits<Cycle>::max()
                          : items_.front().ready;
  }

  void clear() { items_.clear(); }

 private:
  struct Item {
    T value;
    Cycle ready;
  };
  std::size_t capacity_;
  std::deque<Item> items_;
};

}  // namespace panic
