#include "analysis/line_rate.h"

#include <cstdio>

namespace panic::analysis {

LineRateResult evaluate_line_rate(const LineRateInput& in) {
  LineRateResult r;
  r.pps_per_port_per_direction =
      in.line_rate.packets_per_second(kMinWireSizeBytes);
  r.total_pps = r.pps_per_port_per_direction * 2.0 * in.ports;  // RX + TX
  return r;
}

std::vector<LineRateInput> table2_rows() {
  return {
      {DataRate::gbps(40), 2},
      {DataRate::gbps(40), 4},
      {DataRate::gbps(100), 1},
      {DataRate::gbps(100), 2},
  };
}

std::string format_table2_row(const LineRateInput& in,
                              const LineRateResult& r) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%3.0fGbps  %d  %6.1fMpps",
                in.line_rate.gigabits_per_second(), in.ports,
                r.total_pps / 1e6);
  return buf;
}

double rmt_pipeline_pps(Frequency freq, int parallel) {
  return freq.hz() * parallel;
}

bool rmt_sustains_line_rate(Frequency freq, int parallel,
                            const LineRateInput& in,
                            double passes_per_packet) {
  const auto need = evaluate_line_rate(in).total_pps * passes_per_packet;
  return rmt_pipeline_pps(freq, parallel) >= need;
}

}  // namespace panic::analysis
