// Minimal fixed-width table renderer for benchmark output, so every bench
// prints its paper-table reproduction in a uniform format.
#pragma once

#include <string>
#include <vector>

namespace panic::analysis {

class Report {
 public:
  explicit Report(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders with column widths fitted to content.
  std::string render() const;

  /// Convenience: prints to stdout with a title line.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace panic::analysis
