#include "analysis/report.h"

#include <cstdarg>
#include <cstdio>

namespace panic::analysis {

Report::Report(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Report::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Report::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out.append(total - 2, '-');
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Report::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), render().c_str());
  std::fflush(stdout);
}

std::string strf(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace panic::analysis
