// Analytical model behind Table 2: packets-per-second required to sustain
// line rate with minimum-size packets in both RX and TX directions, and
// the §4.2 RMT pipeline throughput law (pps = F · P).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace panic::analysis {

struct LineRateInput {
  DataRate line_rate = DataRate::gbps(40);
  int ports = 2;
};

struct LineRateResult {
  /// Minimum-size pps for one direction of one port.
  double pps_per_port_per_direction;
  /// Total RX+TX pps across all ports (the paper's "PPS" column).
  double total_pps;
};

LineRateResult evaluate_line_rate(const LineRateInput& in);

/// The four rows of Table 2: {40G x2, 40G x4, 100G x1, 100G x2}.
std::vector<LineRateInput> table2_rows();

/// "40Gbps  2  238.1Mpps (paper: 240Mpps)".
std::string format_table2_row(const LineRateInput& in,
                              const LineRateResult& r);

/// §4.2: throughput of the heavyweight RMT pipeline with `parallel`
/// pipelines at `freq` — F · P packets per second.
double rmt_pipeline_pps(Frequency freq, int parallel);

/// Whether the configured RMT pipelines can process every min-size packet
/// `passes_per_packet` times at line rate (the §4.2 feasibility check).
bool rmt_sustains_line_rate(Frequency freq, int parallel,
                            const LineRateInput& in,
                            double passes_per_packet = 1.0);

}  // namespace panic::analysis
