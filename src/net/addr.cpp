#include "net/addr.h"

#include <cstdio>

namespace panic {
namespace {

std::optional<unsigned> parse_hex_byte(std::string_view s) {
  if (s.size() != 2) return std::nullopt;
  unsigned v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<unsigned>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<unsigned>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

}  // namespace

std::optional<MacAddr> MacAddr::parse(std::string_view text) {
  std::array<std::uint8_t, 6> bytes{};
  std::size_t pos = 0;
  for (int i = 0; i < 6; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != ':') return std::nullopt;
      ++pos;
    }
    if (pos + 2 > text.size()) return std::nullopt;
    const auto b = parse_hex_byte(text.substr(pos, 2));
    if (!b) return std::nullopt;
    bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(*b);
    pos += 2;
  }
  if (pos != text.size()) return std::nullopt;
  return MacAddr{bytes};
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t value = 0;
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      return std::nullopt;
    }
    unsigned octet = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      octet = octet * 10 + static_cast<unsigned>(text[pos] - '0');
      if (octet > 255 || ++digits > 3) return std::nullopt;
      ++pos;
    }
    value = (value << 8) | octet;
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Addr{value};
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

}  // namespace panic
