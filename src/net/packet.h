// Frame construction and parsing utilities.
//
// `FrameBuilder` assembles real wire-format frames (Ethernet/IPv4/UDP/TCP/
// ESP/KVS) with correct lengths and checksums.  `ParsedFrame` is the
// software-side decode used by offload engines' internals and by tests; the
// RMT pipeline's *programmable* parser (src/rmt/parser.*) performs its own
// table-driven parse of the same bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.h"

namespace panic {

/// Result of decoding a frame.  Optional layers are absent when the frame
/// doesn't carry them.  `payload_offset/payload_size` locate the innermost
/// payload in the original buffer.
struct ParsedFrame {
  EthernetHeader eth;
  std::optional<Ipv4Header> ipv4;
  std::optional<UdpHeader> udp;
  std::optional<TcpHeader> tcp;
  std::optional<EspHeader> esp;
  std::optional<KvsHeader> kvs;
  std::size_t payload_offset = 0;
  std::size_t payload_size = 0;

  std::span<const std::uint8_t> payload(
      std::span<const std::uint8_t> frame) const {
    return frame.subspan(payload_offset, payload_size);
  }
};

/// Decodes a frame; returns nullopt if the frame is malformed at any layer
/// it claims to carry.  ESP payloads are left opaque (they are ciphertext).
std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame);

/// Builds wire-format frames.  Typical use:
///
///   auto bytes = FrameBuilder()
///       .eth(src_mac, dst_mac)
///       .ipv4(src_ip, dst_ip)
///       .udp(1234, kKvsUdpPort)
///       .kvs(KvsHeader{...})
///       .payload(value_bytes)
///       .build();
class FrameBuilder {
 public:
  FrameBuilder& eth(MacAddr src, MacAddr dst,
                    std::uint16_t ether_type = kEtherTypeIpv4);
  FrameBuilder& ipv4(Ipv4Addr src, Ipv4Addr dst, std::uint8_t dscp = 0,
                     std::uint8_t ttl = 64);
  FrameBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  FrameBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port,
                    std::uint32_t seq = 0, std::uint32_t ack = 0,
                    std::uint8_t flags = TcpHeader::kAck);
  FrameBuilder& esp(std::uint32_t spi, std::uint32_t seq);
  FrameBuilder& kvs(const KvsHeader& header);
  FrameBuilder& payload(std::span<const std::uint8_t> data);
  /// Payload of `size` deterministic pseudo-random bytes (seeded by size).
  FrameBuilder& payload_size(std::size_t size);

  /// Pads to at least `min_size` total frame bytes (default: Ethernet
  /// minimum 64).  Assembles all layers, fixing up IPv4 total_length /
  /// checksum and UDP length.
  std::vector<std::uint8_t> build(std::size_t min_size = 64) const;

  /// build() into an existing buffer (cleared first), reusing its capacity
  /// — lets callers serialize into a recycled message's data vector
  /// without allocating.
  void build_into(std::vector<std::uint8_t>& out,
                  std::size_t min_size = 64) const;

 private:
  struct Spec {
    bool has_eth = false;
    EthernetHeader eth;
    bool has_ipv4 = false;
    Ipv4Header ipv4;
    bool has_udp = false;
    UdpHeader udp;
    bool has_tcp = false;
    TcpHeader tcp;
    bool has_esp = false;
    EspHeader esp;
    bool has_kvs = false;
    KvsHeader kvs;
    std::vector<std::uint8_t> payload;
  };
  Spec spec_;
};

/// Rebuilds `frame` with its innermost payload replaced by `new_payload`,
/// fixing the IPv4 total_length/checksum and UDP length fields.  Used by
/// transforming engines (compression, crypto) that change payload size.
/// `parsed` must be the result of parse_frame(frame).
std::vector<std::uint8_t> replace_l4_payload(
    std::span<const std::uint8_t> frame, const ParsedFrame& parsed,
    std::span<const std::uint8_t> new_payload);

/// Convenience constructors for the workloads used across the benchmarks.
namespace frames {

/// Minimum-size (64 B) UDP frame — the Table 2 line-rate stress unit.
std::vector<std::uint8_t> min_udp(Ipv4Addr src, Ipv4Addr dst,
                                  std::uint16_t src_port = 40000,
                                  std::uint16_t dst_port = 9);

/// KVS GET request (§3.2).
std::vector<std::uint8_t> kvs_get(Ipv4Addr src, Ipv4Addr dst,
                                  std::uint16_t tenant, std::uint64_t key,
                                  std::uint32_t request_id);

/// KVS SET request carrying `value_size` bytes.
std::vector<std::uint8_t> kvs_set(Ipv4Addr src, Ipv4Addr dst,
                                  std::uint16_t tenant, std::uint64_t key,
                                  std::uint32_t request_id,
                                  std::size_t value_size);

/// KVS GET reply carrying `value` (built by the on-NIC cache / RDMA path).
std::vector<std::uint8_t> kvs_get_reply(Ipv4Addr src, Ipv4Addr dst,
                                        std::uint16_t tenant,
                                        std::uint64_t key,
                                        std::uint32_t request_id,
                                        std::span<const std::uint8_t> value);

}  // namespace frames

}  // namespace panic
