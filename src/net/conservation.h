// ConservationLedger: the end-to-end message conservation invariant.
//
// Every message the simulation creates must end its life with an explicit
// fate: delivered (host ring / wire), dropped (a policy drop at the
// logical scheduler — the only legal drop point, §3.1.2), consumed
// (terminally processed, e.g. a DMA request absorbed after its completion
// was emitted), or faulted (destroyed because of an *injected* fault).  A
// message destroyed with no fate is LOST — a silent leak somewhere in the
// NIC — and fails any run with the invariant checker armed
// (fault/invariants.h).
//
// The ledger is a process-wide tally fed by the MessagePool: make_message
// counts creation, and the pool's release() reads Message::fate at the
// moment of destruction.  The hot-path cost is a handful of increments on
// paths that already touch the pool.  Like the pool it is a leaky
// singleton; tests and benches reset() it at the start of a measured run.
// Tallies are relaxed atomics: any shard of the parallel kernel may create
// or destroy messages, and per-fate totals are order-independent sums.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "net/message.h"

namespace panic {

class ConservationLedger {
 public:
  struct Report {
    std::uint64_t created = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t consumed = 0;
    std::uint64_t faulted = 0;
    std::uint64_t shed = 0;  ///< degraded-mode backpressure overflow
    std::uint64_t lost = 0;  ///< destroyed while still kInFlight
    std::uint64_t live = 0;  ///< created but not yet destroyed

    /// The conservation property: every created message is accounted for
    /// by exactly one of the terminal fates or is still live, and nothing
    /// was destroyed fate-less.
    bool conserved() const {
      return lost == 0 &&
             created == delivered + dropped + consumed + faulted + shed + live;
    }

    std::string to_string() const;
  };

  /// The process-wide ledger (leaky singleton, like MessagePool).
  static ConservationLedger& instance();

  /// Zeroes all tallies.  Live messages created before the reset will
  /// still tally their fate on destruction; callers that want a clean
  /// window reset between runs, when nothing is in flight.
  void reset();

  /// Called by make_message().
  void on_create() { created_.fetch_add(1, std::memory_order_relaxed); }

  /// Called by MessagePool::release with the dying message's fate.
  void on_destroy(MessageFate fate) noexcept {
    switch (fate) {
      case MessageFate::kInFlight:
        lost_.fetch_add(1, std::memory_order_relaxed);
        break;
      case MessageFate::kDelivered:
        delivered_.fetch_add(1, std::memory_order_relaxed);
        break;
      case MessageFate::kDropped:
        dropped_.fetch_add(1, std::memory_order_relaxed);
        break;
      case MessageFate::kConsumed:
        consumed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case MessageFate::kFaulted:
        faulted_.fetch_add(1, std::memory_order_relaxed);
        break;
      case MessageFate::kShed:
        shed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    destroyed_.fetch_add(1, std::memory_order_relaxed);
  }

  Report report() const;

  std::uint64_t created() const {
    return created_.load(std::memory_order_relaxed);
  }
  std::uint64_t lost() const { return lost_.load(std::memory_order_relaxed); }

 private:
  ConservationLedger() = default;
  ~ConservationLedger() = delete;  // leaky: reachable until process exit

  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> destroyed_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> consumed_{0};
  std::atomic<std::uint64_t> faulted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> lost_{0};
};

}  // namespace panic
