// Internet checksum (RFC 1071) and CRC-32 (IEEE 802.3) used by the packet
// model and by the checksum-offload engine.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace panic {

/// RFC 1071 ones-complement checksum over `data`.  Returns the checksum in
/// host order, ready to be stored into a header field (already negated).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Incremental variant: fold an additional buffer into a running 32-bit sum.
/// Call `internet_checksum_finish` at the end.
std::uint32_t internet_checksum_partial(std::span<const std::uint8_t> data,
                                        std::uint32_t sum);
std::uint16_t internet_checksum_finish(std::uint32_t sum);

/// IEEE 802.3 CRC-32 (reflected, poly 0xEDB88320) as used by the Ethernet
/// FCS.  `seed` defaults to the standard initial value.
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0xFFFFFFFFu);

}  // namespace panic
