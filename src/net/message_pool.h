// Free-list recycler behind make_message()/recycle_message().
//
// The simulation hot path (line-rate forwarding through the mesh, §3.1.2)
// creates and destroys one Message per frame, DMA op and interrupt.  With a
// plain heap allocation per message the saturated regime is dominated by
// allocator traffic; the pool caps steady-state allocations at zero by
// recycling Message objects — including the capacity of their `data`
// buffers and chain-hop vectors — through a LIFO free list.
//
// Ownership rules (see DESIGN.md §Hot-path memory model):
//   * make_message() is the only way to create a Message; it pops the free
//     list (pool hit) or heap-allocates (pool miss) and always assigns a
//     fresh process-wide id.
//   * MessagePtr's deleter returns the Message to the pool, so every
//     existing sink — host delivery, wire TX, queue drops, DMA completions,
//     baselines — recycles automatically when the unique_ptr dies.
//   * The pool is a leaky process-wide singleton: it outlives every
//     simulator and stays reachable at exit (leak-checker clean).
//   * All entry points are thread-safe behind one mutex: under the
//     parallel kernel any shard may allocate or recycle messages.  The
//     lock is uncontended in sequential modes and short (pointer swaps) in
//     parallel ones; which shard gets a pool hit vs. miss becomes
//     schedule-dependent, which is why the kernel.alloc.* gauges are
//     excluded from the differential oracles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace panic {

struct Message;

class MessagePool {
 public:
  struct Stats {
    std::uint64_t pool_hits = 0;     ///< acquisitions served from the free list
    std::uint64_t pool_misses = 0;   ///< acquisitions that hit the heap
    std::uint64_t recycled = 0;      ///< messages returned to the free list
    std::uint64_t bytes_reused = 0;  ///< data-buffer capacity handed back out
    std::uint64_t live = 0;          ///< messages currently outside the pool
    std::uint64_t live_high_watermark = 0;
    std::uint64_t prewarmed = 0;     ///< messages pre-allocated via reserve()
  };

  /// The process-wide pool (leaky singleton; never destroyed).
  static MessagePool& instance();

  /// Pops a recycled Message (reset, retaining buffer capacity) or
  /// heap-allocates one.  Does NOT assign an id — make_message() does.
  Message* acquire();

  /// Returns `msg` to the free list.  Called by MessageDeleter.  A
  /// double-recycle (two owners freeing the same message) corrupts the
  /// free list, so it aborts the process in every build type — Release
  /// included.  Also tallies the message's fate into the
  /// ConservationLedger (net/conservation.h).
  void release(Message* msg) noexcept;

  /// Point-in-time copy (by value: the cells mutate under the pool's own
  /// lock, so handing out a reference would be a torn read in parallel
  /// runs).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  std::size_t free_size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_count_;
  }

  /// Frees the entire free list (tests that want a cold pool).  Live
  /// messages are unaffected.
  void trim();

  /// Pre-warms the free list up to `target` entries so a saturated run's
  /// working set never touches the heap (pool-miss-free from cycle 0, not
  /// just after warmup).  Only the free list and the `prewarmed` stat are
  /// touched — live/recycled accounting and the conservation ledger never
  /// see these messages until they are acquired normally.  No-op when the
  /// free list already holds `target` or more.
  void reserve(std::size_t target);

 private:
  MessagePool() = default;
  ~MessagePool() = delete;  // leaky: reachable until process exit

  /// Free list threaded through the messages themselves (Message::pool_next)
  /// so the pool needs no side storage that could reallocate.
  mutable std::mutex mu_;
  Message* free_head_ = nullptr;
  std::size_t free_count_ = 0;
  Stats stats_;
};

}  // namespace panic
