// Bounds-checked big-endian byte readers/writers for header serialization.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace panic {

/// Appends big-endian (network order) fields to a byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(static_cast<std::uint8_t>(v >> 8));
    out_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::size_t size() const { return out_.size(); }

  /// Patches a previously written 16-bit field (e.g. a checksum) in place.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_[offset] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 1] = static_cast<std::uint8_t>(v);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Reads big-endian fields from a byte span.  All reads are bounds-checked;
/// a failed read sets the error flag and returns 0, so parsers can check
/// `ok()` once at the end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t offset() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() {
    if (!check(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!check(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  /// Reads `n` bytes into `out` (must have room for n).
  void bytes(std::uint8_t* out, std::size_t n) {
    if (!check(n)) return;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
  }
  /// Returns a view of the next `n` bytes and skips them.
  std::span<const std::uint8_t> view(std::size_t n) {
    if (!check(n)) return {};
    auto v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  void skip(std::size_t n) { check(n) ? void(pos_ += n) : void(); }

 private:
  bool check(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace panic
