// Minimal pcap (libpcap classic format) writer, so transmitted/received
// frames can be inspected with tcpdump/wireshark:
//
//   PcapWriter pcap("tx.pcap", Frequency::megahertz(500));
//   nic.eth_port(0).set_tx_sink([&](const Message& m, Cycle now) {
//     pcap.write(m.data, now);
//   });
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>

#include "common/units.h"

namespace panic {

class PcapWriter {
 public:
  /// Opens `path` and writes the global header.  `clock` converts cycle
  /// timestamps into the pcap's microsecond timestamps.
  PcapWriter(const std::string& path, Frequency clock);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Appends one frame stamped at simulation cycle `at`.
  void write(std::span<const std::uint8_t> frame, Cycle at);

  std::uint64_t frames_written() const { return frames_; }

  /// Flushes and closes early (also done by the destructor).
  void close();

 private:
  void u32(std::uint32_t v);

  std::FILE* file_ = nullptr;
  Frequency clock_;
  std::uint64_t frames_ = 0;
};

}  // namespace panic
