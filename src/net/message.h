// The unified message abstraction (§3.1): Ethernet frames, DMA
// reads/writes, descriptor fetches, RDMA operations and interrupts are all
// `Message`s travelling on the same on-chip network.  This is the paper's
// key insight enabling a single unified NoC (footnote 1: separate networks
// waste idle wires).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/units.h"
#include "net/chain_header.h"

namespace panic {

enum class MessageKind : std::uint8_t {
  kPacket = 0,       // an Ethernet frame (RX or TX)
  kDmaRead,          // engine -> DMA: read from host memory
  kDmaWrite,         // engine -> DMA: write to host memory
  kDmaCompletion,    // DMA -> engine: data / ack
  kDescriptorFetch,  // driver descriptor ring read
  kInterrupt,        // DMA/PCIe -> host interrupt
  kRdmaRequest,      // RDMA engine operation
  kDoorbell,         // host driver MMIO write (TX descriptors posted)
};

const char* to_string(MessageKind kind);

/// What ultimately happened to a message.  Every code path that destroys a
/// MessagePtr must first declare the message's fate; the conservation
/// ledger (net/conservation.h) tallies fates at recycle time, and a
/// message destroyed while still kInFlight counts as *lost* — the
/// end-to-end invariant violation the fault subsystem exists to catch.
enum class MessageFate : std::uint8_t {
  kInFlight = 0,  ///< not yet decided (the only illegal fate at destroy)
  kDelivered,     ///< reached the host RX ring or left on the wire
  kDropped,       ///< policy drop (scheduler queue, RMT program, no route)
  kConsumed,      ///< terminally processed (request absorbed, reply emitted)
  kFaulted,       ///< destroyed because of an injected fault (dead engine,
                  ///< re-steer with no fallback) — attributed, not lost
  kShed,          ///< shed by degraded-mode admission: no live route and the
                  ///< bounded backpressure buffer was full (on_no_route)
};

const char* to_string(MessageFate fate);

/// Metadata extracted by the RMT parser and carried with the message while
/// it is on the NIC.  Engines read these fields instead of re-parsing raw
/// bytes on every hop (the hardware analogue: the PHV travels with the
/// packet through the chain header's metadata words).
struct MessageMeta {
  bool has_ipv4 = false;
  bool has_udp = false;
  bool has_tcp = false;
  bool is_esp = false;   // IPSec-encapsulated (needs decrypt pass)
  bool is_kvs = false;   // carries the KVS application header
  bool from_wan = false; // classified as WAN traffic (needs IPSec on TX)
  std::uint8_t ip_proto = 0;
  std::uint16_t udp_dst_port = 0;
  std::uint8_t kvs_op = 0;
  std::uint64_t kvs_key = 0;
  std::uint32_t kvs_request_id = 0;
  std::uint8_t cache_hint = 0;  ///< engine-local marker (regex match, ...)
};

struct Message {
  MessageId id;
  MessageKind kind = MessageKind::kPacket;

  /// Raw wire bytes for packets; payload/descriptor bytes for DMA ops.
  std::vector<std::uint8_t> data;

  TenantId tenant;
  FlowId flow;

  /// The PANIC chain header: remaining engine hops + per-hop slack.
  ChainHeader chain;

  /// Scheduling slack at the engine currently processing the message
  /// (copied from the chain hop on arrival; lower = more urgent).
  std::uint32_t slack = 0;

  /// Parsed metadata (valid once `meta_valid`).
  MessageMeta meta;
  bool meta_valid = false;

  /// For request/response message kinds (DMA, RDMA): the engine to send
  /// the completion to.
  EngineId reply_to;
  /// DMA descriptor: host address and length.  The address space is
  /// synthetic (the host-memory model hashes it to deterministic content).
  std::uint64_t dma_addr = 0;
  std::uint32_t dma_bytes = 0;

  /// Ethernet port the packet arrived on / should leave from.
  EngineId ingress_port;
  EngineId egress_port;

  /// True for packets originating from the host (TX path): the RMT
  /// program routes them toward the wire instead of back to the host.
  bool from_host = false;

  // --- Bookkeeping for experiments (not part of the architecture). ---
  Cycle created_at = 0;       ///< when the workload generated it
  Cycle nic_ingress_at = 0;   ///< when it entered the NIC
  std::uint32_t rmt_passes = 0;  ///< heavyweight pipeline traversals (E6)
  std::uint32_t noc_hops = 0;    ///< mesh router hops taken
  std::uint32_t engines_visited = 0;  ///< offload engines that processed it

  // --- Pool bookkeeping (see net/message_pool.h). ---
  Message* pool_next = nullptr;  ///< free-list link while pooled
  bool in_pool = false;          ///< guards against double-recycle

  /// Conservation accounting (see net/conservation.h).  First fate wins:
  /// set through set_fate() at the point that decides the outcome.
  MessageFate fate = MessageFate::kInFlight;

  /// Declares the message's fate if none is set yet (a message delivered
  /// inside process() keeps kDelivered even though the generic consumed
  /// mark runs afterwards).
  void set_fate(MessageFate f) {
    if (fate == MessageFate::kInFlight) fate = f;
  }

  /// Bytes the message occupies on the on-chip network: payload plus the
  /// chain header it carries.
  std::size_t wire_size() const { return data.size() + chain.wire_size(); }

  std::size_t size() const { return data.size(); }

  /// Restores the default-constructed state while keeping the capacity of
  /// `data` and the chain's hop vector — the point of pooling is that a
  /// recycled message's buffers are reused, not reallocated.
  void reset_for_reuse();
};

/// Returns the message to the process-wide MessagePool instead of freeing
/// it.  Being MessagePtr's deleter, every place that destroys a MessagePtr
/// — host delivery, wire TX, drops, DMA completions, baselines — recycles
/// automatically.
struct MessageDeleter {
  void operator()(Message* msg) const noexcept;
};

using MessagePtr = std::unique_ptr<Message, MessageDeleter>;

/// Allocates a message with a fresh process-wide unique id, recycling a
/// pooled Message when one is available.
MessagePtr make_message(MessageKind kind = MessageKind::kPacket);

/// Explicitly returns `msg` to the pool (equivalent to destroying it).
void recycle_message(MessagePtr msg);

}  // namespace panic
