// The PANIC lightweight chain header (§3.1.2).
//
// When the heavyweight RMT pipeline processes a message it computes the
// full chain of engine destinations the message must visit, plus a slack
// time per hop (§3.1.3), and prepends this header.  Each engine's
// lightweight lookup logic then just pops the next hop — no further RMT
// traversal is needed.  If the chain cannot be fully known (e.g. encrypted
// messages), the pipeline includes itself as a hop so it can extend the
// chain after decryption.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.h"
#include "net/bytes.h"

namespace panic {

/// One hop of the chain: the engine to visit and the scheduling slack the
/// message has at that engine (lower slack = more urgent).
struct ChainHop {
  EngineId engine;
  std::uint32_t slack = 0;

  constexpr auto operator<=>(const ChainHop&) const = default;
};

class ChainHeader {
 public:
  ChainHeader() = default;

  /// Appends a hop to the end of the chain.
  void push_hop(EngineId engine, std::uint32_t slack = 0) {
    hops_.push_back(ChainHop{engine, slack});
  }

  /// The hop the message is currently headed to (nullopt when exhausted).
  std::optional<ChainHop> current() const {
    if (next_ >= hops_.size()) return std::nullopt;
    return hops_[next_];
  }

  /// Consumes the current hop; returns the hop after it, if any.
  std::optional<ChainHop> advance() {
    if (next_ < hops_.size()) ++next_;
    return current();
  }

  /// Rewrites the engine of the current (not yet consumed) hop, keeping
  /// its slack — recovery re-steering around a dead engine must rewrite
  /// the hop, not just redirect delivery, so the fallback engine consumes
  /// it and the chain tail stays reachable.  No-op when exhausted.
  void reroute_current(EngineId engine) {
    if (next_ < hops_.size()) hops_[next_].engine = engine;
  }

  bool exhausted() const { return next_ >= hops_.size(); }
  std::size_t remaining() const { return hops_.size() - next_; }
  std::size_t total_hops() const { return hops_.size(); }
  std::size_t consumed() const { return next_; }

  const std::vector<ChainHop>& hops() const { return hops_; }

  /// Resets to an empty chain (used when the RMT pipeline recomputes the
  /// route on a re-entry pass).
  void clear() {
    hops_.clear();
    next_ = 0;
  }

  /// Wire size in bytes: 2-byte count + 6 bytes per hop (2 engine id +
  /// 4 slack).  Counted against on-chip bandwidth, as the header is carried
  /// by every message on the mesh.
  std::size_t wire_size() const { return 2 + hops_.size() * 6; }

  void serialize(ByteWriter& w) const;
  static std::optional<ChainHeader> parse(ByteReader& r);

  bool operator==(const ChainHeader& o) const {
    return hops_ == o.hops_ && next_ == o.next_;
  }

 private:
  std::vector<ChainHop> hops_;
  std::size_t next_ = 0;
};

}  // namespace panic
