// Protocol headers with real wire-format serialization.  The RMT pipeline's
// programmable parser (src/rmt/parser.*) operates on these encodings, so the
// formats follow the actual RFC layouts (Ethernet II, IPv4, UDP, TCP,
// IPSec ESP) plus one application header for the paper's motivating
// key-value-store workload (§2.2, §3.2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/addr.h"
#include "net/bytes.h"

namespace panic {

// EtherTypes.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;

// IPv4 protocol numbers.
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;
inline constexpr std::uint8_t kIpProtoEsp = 50;

/// UDP destination port carrying the KVS application header.
inline constexpr std::uint16_t kKvsUdpPort = 6379;

/// Ethernet II header (14 bytes, no VLAN).
struct EthernetHeader {
  static constexpr std::size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = kEtherTypeIpv4;

  void serialize(ByteWriter& w) const;
  static std::optional<EthernetHeader> parse(ByteReader& r);
};

/// IPv4 header (20 bytes, no options).  `serialize` computes the header
/// checksum; `parse` verifies it when `verify_checksum` is set.
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;

  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoUdp;
  Ipv4Addr src;
  Ipv4Addr dst;

  void serialize(ByteWriter& w) const;
  static std::optional<Ipv4Header> parse(ByteReader& r,
                                         bool verify_checksum = true);
};

/// UDP header (8 bytes).  Checksum left 0 (valid per RFC 768 for IPv4);
/// the checksum-offload engine fills it on demand.
struct UdpHeader {
  static constexpr std::size_t kSize = 8;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  void serialize(ByteWriter& w) const;
  static std::optional<UdpHeader> parse(ByteReader& r);
};

/// TCP header (20 bytes, no options).
struct TcpHeader {
  static constexpr std::size_t kSize = 20;

  // Flag bits.
  static constexpr std::uint8_t kFin = 0x01;
  static constexpr std::uint8_t kSyn = 0x02;
  static constexpr std::uint8_t kRst = 0x04;
  static constexpr std::uint8_t kPsh = 0x08;
  static constexpr std::uint8_t kAck = 0x10;

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 65535;
  std::uint16_t checksum = 0;

  void serialize(ByteWriter& w) const;
  static std::optional<TcpHeader> parse(ByteReader& r);
};

/// IPSec ESP header (8 bytes: SPI + sequence).  The encrypted payload
/// follows; the trailer/ICV are folded into the payload bytes produced by
/// the IPSec engine.
struct EspHeader {
  static constexpr std::size_t kSize = 8;

  std::uint32_t spi = 0;
  std::uint32_t seq = 0;

  void serialize(ByteWriter& w) const;
  static std::optional<EspHeader> parse(ByteReader& r);
};

/// Operations of the key-value-store application protocol (§3.2).
enum class KvsOp : std::uint8_t {
  kGet = 1,
  kSet = 2,
  kGetReply = 3,
  kSetReply = 4,
  kGetMiss = 5,
};

/// KVS application header carried over UDP (24 bytes).  Fixed-width key,
/// explicit tenant id (the RMT pipeline matches on it for scheduling), and
/// a value length for SETs / GET replies.
struct KvsHeader {
  static constexpr std::size_t kSize = 24;
  static constexpr std::uint32_t kMagic = 0x50414B56;  // "PAKV"

  KvsOp op = KvsOp::kGet;
  std::uint8_t flags = 0;
  std::uint16_t tenant = 0;
  std::uint64_t key = 0;
  std::uint32_t value_length = 0;
  std::uint32_t request_id = 0;

  void serialize(ByteWriter& w) const;
  static std::optional<KvsHeader> parse(ByteReader& r);
};

}  // namespace panic
