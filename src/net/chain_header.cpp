#include "net/chain_header.h"

namespace panic {

void ChainHeader::serialize(ByteWriter& w) const {
  w.u16(static_cast<std::uint16_t>(hops_.size()));
  for (const ChainHop& hop : hops_) {
    w.u16(hop.engine.value);
    w.u32(hop.slack);
  }
}

std::optional<ChainHeader> ChainHeader::parse(ByteReader& r) {
  const std::uint16_t count = r.u16();
  ChainHeader h;
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint16_t engine = r.u16();
    const std::uint32_t slack = r.u32();
    h.push_hop(EngineId{engine}, slack);
  }
  if (!r.ok()) return std::nullopt;
  return h;
}

}  // namespace panic
