#include "net/headers.h"

#include "net/checksum.h"

namespace panic {

void EthernetHeader::serialize(ByteWriter& w) const {
  w.bytes(dst.bytes());
  w.bytes(src.bytes());
  w.u16(ether_type);
}

std::optional<EthernetHeader> EthernetHeader::parse(ByteReader& r) {
  EthernetHeader h;
  std::array<std::uint8_t, 6> dst{}, src{};
  r.bytes(dst.data(), 6);
  r.bytes(src.data(), 6);
  h.dst = MacAddr{dst};
  h.src = MacAddr{src};
  h.ether_type = r.u16();
  if (!r.ok()) return std::nullopt;
  return h;
}

void Ipv4Header::serialize(ByteWriter& w) const {
  std::uint8_t hdr[kSize];
  hdr[0] = 0x45;  // version 4, IHL 5
  hdr[1] = static_cast<std::uint8_t>(dscp << 2);
  hdr[2] = static_cast<std::uint8_t>(total_length >> 8);
  hdr[3] = static_cast<std::uint8_t>(total_length);
  hdr[4] = static_cast<std::uint8_t>(identification >> 8);
  hdr[5] = static_cast<std::uint8_t>(identification);
  hdr[6] = 0x40;  // DF, no fragmentation
  hdr[7] = 0x00;
  hdr[8] = ttl;
  hdr[9] = protocol;
  hdr[10] = 0;  // checksum placeholder
  hdr[11] = 0;
  hdr[12] = static_cast<std::uint8_t>(src.value() >> 24);
  hdr[13] = static_cast<std::uint8_t>(src.value() >> 16);
  hdr[14] = static_cast<std::uint8_t>(src.value() >> 8);
  hdr[15] = static_cast<std::uint8_t>(src.value());
  hdr[16] = static_cast<std::uint8_t>(dst.value() >> 24);
  hdr[17] = static_cast<std::uint8_t>(dst.value() >> 16);
  hdr[18] = static_cast<std::uint8_t>(dst.value() >> 8);
  hdr[19] = static_cast<std::uint8_t>(dst.value());
  const std::uint16_t sum = internet_checksum({hdr, kSize});
  hdr[10] = static_cast<std::uint8_t>(sum >> 8);
  hdr[11] = static_cast<std::uint8_t>(sum);
  w.bytes({hdr, kSize});
}

std::optional<Ipv4Header> Ipv4Header::parse(ByteReader& r,
                                            bool verify_checksum) {
  const auto raw = r.view(kSize);
  if (raw.size() != kSize) return std::nullopt;
  if ((raw[0] >> 4) != 4 || (raw[0] & 0x0F) != 5) return std::nullopt;
  if (verify_checksum && internet_checksum(raw) != 0) return std::nullopt;
  Ipv4Header h;
  h.dscp = raw[1] >> 2;
  h.total_length = static_cast<std::uint16_t>((raw[2] << 8) | raw[3]);
  h.identification = static_cast<std::uint16_t>((raw[4] << 8) | raw[5]);
  h.ttl = raw[8];
  h.protocol = raw[9];
  h.src = Ipv4Addr{(std::uint32_t{raw[12]} << 24) |
                   (std::uint32_t{raw[13]} << 16) |
                   (std::uint32_t{raw[14]} << 8) | raw[15]};
  h.dst = Ipv4Addr{(std::uint32_t{raw[16]} << 24) |
                   (std::uint32_t{raw[17]} << 16) |
                   (std::uint32_t{raw[18]} << 8) | raw[19]};
  return h;
}

void UdpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

std::optional<UdpHeader> UdpHeader::parse(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  if (!r.ok() || h.length < kSize) return std::nullopt;
  return h;
}

void TcpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(5 << 4);  // data offset 5 words, no options
  w.u8(flags);
  w.u16(window);
  w.u16(checksum);
  w.u16(0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::parse(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint8_t offset = r.u8() >> 4;
  h.flags = r.u8();
  h.window = r.u16();
  h.checksum = r.u16();
  r.skip(2);  // urgent pointer
  if (!r.ok() || offset < 5) return std::nullopt;
  // Skip TCP options if present.
  r.skip(static_cast<std::size_t>(offset - 5) * 4);
  if (!r.ok()) return std::nullopt;
  return h;
}

void EspHeader::serialize(ByteWriter& w) const {
  w.u32(spi);
  w.u32(seq);
}

std::optional<EspHeader> EspHeader::parse(ByteReader& r) {
  EspHeader h;
  h.spi = r.u32();
  h.seq = r.u32();
  if (!r.ok()) return std::nullopt;
  return h;
}

void KvsHeader::serialize(ByteWriter& w) const {
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(op));
  w.u8(flags);
  w.u16(tenant);
  w.u64(key);
  w.u32(value_length);
  w.u32(request_id);
}

std::optional<KvsHeader> KvsHeader::parse(ByteReader& r) {
  if (r.u32() != kMagic) return std::nullopt;
  KvsHeader h;
  h.op = static_cast<KvsOp>(r.u8());
  h.flags = r.u8();
  h.tenant = r.u16();
  h.key = r.u64();
  h.value_length = r.u32();
  h.request_id = r.u32();
  if (!r.ok()) return std::nullopt;
  if (h.op < KvsOp::kGet || h.op > KvsOp::kGetMiss) return std::nullopt;
  return h;
}

}  // namespace panic
