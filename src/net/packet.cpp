#include "net/packet.h"

#include <cassert>

namespace panic {

std::optional<ParsedFrame> parse_frame(std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  ParsedFrame out;
  const auto eth = EthernetHeader::parse(r);
  if (!eth) return std::nullopt;
  out.eth = *eth;

  if (out.eth.ether_type != kEtherTypeIpv4) {
    out.payload_offset = r.offset();
    out.payload_size = r.remaining();
    return out;
  }

  const auto ipv4 = Ipv4Header::parse(r);
  if (!ipv4) return std::nullopt;
  out.ipv4 = *ipv4;
  // Trust total_length to delimit the L3 payload (frames may be padded to
  // the Ethernet minimum).
  if (ipv4->total_length < Ipv4Header::kSize) return std::nullopt;
  const std::size_t l3_payload = ipv4->total_length - Ipv4Header::kSize;
  if (l3_payload > r.remaining()) return std::nullopt;

  switch (ipv4->protocol) {
    case kIpProtoUdp: {
      const auto udp = UdpHeader::parse(r);
      if (!udp) return std::nullopt;
      out.udp = *udp;
      if (udp->length < UdpHeader::kSize ||
          udp->length > l3_payload) {
        return std::nullopt;
      }
      std::size_t app_size = udp->length - UdpHeader::kSize;
      const bool kvs_port =
          udp->dst_port == kKvsUdpPort || udp->src_port == kKvsUdpPort;
      if (kvs_port && app_size >= KvsHeader::kSize) {
        // Peek via a sub-reader so a non-KVS payload on the KVS port is
        // still delivered as an opaque UDP payload.
        ByteReader peek(frame.subspan(r.offset(), app_size));
        if (const auto kvs = KvsHeader::parse(peek)) {
          out.kvs = *kvs;
          r.skip(KvsHeader::kSize);
          app_size -= KvsHeader::kSize;
        }
      }
      out.payload_offset = r.offset();
      out.payload_size = app_size;
      return out;
    }
    case kIpProtoTcp: {
      const auto tcp = TcpHeader::parse(r);
      if (!tcp) return std::nullopt;
      out.tcp = *tcp;
      out.payload_offset = r.offset();
      out.payload_size = l3_payload >= TcpHeader::kSize
                             ? l3_payload - TcpHeader::kSize
                             : 0;
      return out;
    }
    case kIpProtoEsp: {
      const auto esp = EspHeader::parse(r);
      if (!esp) return std::nullopt;
      out.esp = *esp;
      out.payload_offset = r.offset();
      out.payload_size =
          l3_payload >= EspHeader::kSize ? l3_payload - EspHeader::kSize : 0;
      return out;
    }
    default:
      out.payload_offset = r.offset();
      out.payload_size = l3_payload;
      return out;
  }
}

FrameBuilder& FrameBuilder::eth(MacAddr src, MacAddr dst,
                                std::uint16_t ether_type) {
  spec_.has_eth = true;
  spec_.eth.src = src;
  spec_.eth.dst = dst;
  spec_.eth.ether_type = ether_type;
  return *this;
}

FrameBuilder& FrameBuilder::ipv4(Ipv4Addr src, Ipv4Addr dst,
                                 std::uint8_t dscp, std::uint8_t ttl) {
  spec_.has_ipv4 = true;
  spec_.ipv4.src = src;
  spec_.ipv4.dst = dst;
  spec_.ipv4.dscp = dscp;
  spec_.ipv4.ttl = ttl;
  return *this;
}

FrameBuilder& FrameBuilder::udp(std::uint16_t src_port,
                                std::uint16_t dst_port) {
  spec_.has_udp = true;
  spec_.udp.src_port = src_port;
  spec_.udp.dst_port = dst_port;
  return *this;
}

FrameBuilder& FrameBuilder::tcp(std::uint16_t src_port,
                                std::uint16_t dst_port, std::uint32_t seq,
                                std::uint32_t ack, std::uint8_t flags) {
  spec_.has_tcp = true;
  spec_.tcp.src_port = src_port;
  spec_.tcp.dst_port = dst_port;
  spec_.tcp.seq = seq;
  spec_.tcp.ack = ack;
  spec_.tcp.flags = flags;
  return *this;
}

FrameBuilder& FrameBuilder::esp(std::uint32_t spi, std::uint32_t seq) {
  spec_.has_esp = true;
  spec_.esp.spi = spi;
  spec_.esp.seq = seq;
  return *this;
}

FrameBuilder& FrameBuilder::kvs(const KvsHeader& header) {
  spec_.has_kvs = true;
  spec_.kvs = header;
  return *this;
}

FrameBuilder& FrameBuilder::payload(std::span<const std::uint8_t> data) {
  spec_.payload.assign(data.begin(), data.end());
  return *this;
}

FrameBuilder& FrameBuilder::payload_size(std::size_t size) {
  spec_.payload.resize(size);
  // Deterministic pseudo-random fill so compression/crypto engines see
  // realistic (non-zero) data.
  std::uint64_t x = 0x243F6A8885A308D3ull ^ size;
  for (auto& b : spec_.payload) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return *this;
}

std::vector<std::uint8_t> FrameBuilder::build(std::size_t min_size) const {
  std::vector<std::uint8_t> out;
  build_into(out, min_size);
  return out;
}

void FrameBuilder::build_into(std::vector<std::uint8_t>& out,
                              std::size_t min_size) const {
  assert(spec_.has_eth && "frame must have an Ethernet layer");
  Spec spec = spec_;  // local copy so we can fix up lengths

  // Compute layer sizes innermost-out.
  std::size_t app_size = spec.payload.size();
  if (spec.has_kvs) app_size += KvsHeader::kSize;

  std::size_t l4_size = app_size;
  if (spec.has_udp) {
    l4_size += UdpHeader::kSize;
    spec.udp.length = static_cast<std::uint16_t>(l4_size);
  } else if (spec.has_tcp) {
    l4_size += TcpHeader::kSize;
  } else if (spec.has_esp) {
    l4_size += EspHeader::kSize;
  }

  if (spec.has_ipv4) {
    spec.ipv4.total_length =
        static_cast<std::uint16_t>(Ipv4Header::kSize + l4_size);
    if (spec.has_udp) {
      spec.ipv4.protocol = kIpProtoUdp;
    } else if (spec.has_tcp) {
      spec.ipv4.protocol = kIpProtoTcp;
    } else if (spec.has_esp) {
      spec.ipv4.protocol = kIpProtoEsp;
    }
  }

  out.clear();
  out.reserve(EthernetHeader::kSize + Ipv4Header::kSize + l4_size);
  ByteWriter w(out);
  spec.eth.serialize(w);
  if (spec.has_ipv4) spec.ipv4.serialize(w);
  if (spec.has_udp) spec.udp.serialize(w);
  if (spec.has_tcp) spec.tcp.serialize(w);
  if (spec.has_esp) spec.esp.serialize(w);
  if (spec.has_kvs) spec.kvs.serialize(w);
  w.bytes(spec.payload);

  if (out.size() < min_size) out.resize(min_size, 0);
}

std::vector<std::uint8_t> replace_l4_payload(
    std::span<const std::uint8_t> frame, const ParsedFrame& parsed,
    std::span<const std::uint8_t> new_payload) {
  // Copy everything up to the old payload, then the new payload.
  std::vector<std::uint8_t> out(frame.begin(),
                                frame.begin() + static_cast<std::ptrdiff_t>(
                                                    parsed.payload_offset));
  out.insert(out.end(), new_payload.begin(), new_payload.end());

  const std::ptrdiff_t delta = static_cast<std::ptrdiff_t>(new_payload.size()) -
                               static_cast<std::ptrdiff_t>(parsed.payload_size);
  if (parsed.ipv4.has_value()) {
    Ipv4Header ip = *parsed.ipv4;
    ip.total_length =
        static_cast<std::uint16_t>(static_cast<std::ptrdiff_t>(ip.total_length) + delta);
    // Re-serialize the IPv4 header in place (offset 14 after Ethernet).
    std::vector<std::uint8_t> hdr;
    ByteWriter w(hdr);
    ip.serialize(w);
    std::copy(hdr.begin(), hdr.end(),
              out.begin() + EthernetHeader::kSize);
  }
  if (parsed.udp.has_value()) {
    const std::size_t udp_off = EthernetHeader::kSize + Ipv4Header::kSize;
    const auto new_len = static_cast<std::uint16_t>(
        static_cast<std::ptrdiff_t>(parsed.udp->length) + delta);
    out[udp_off + 4] = static_cast<std::uint8_t>(new_len >> 8);
    out[udp_off + 5] = static_cast<std::uint8_t>(new_len);
  }
  if (out.size() < 64) out.resize(64, 0);  // Ethernet minimum
  return out;
}

namespace frames {

namespace {
constexpr MacAddr kSrcMac{{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}};
constexpr MacAddr kDstMac{{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}};
}  // namespace

std::vector<std::uint8_t> min_udp(Ipv4Addr src, Ipv4Addr dst,
                                  std::uint16_t src_port,
                                  std::uint16_t dst_port) {
  return FrameBuilder()
      .eth(kSrcMac, kDstMac)
      .ipv4(src, dst)
      .udp(src_port, dst_port)
      .build();
}

std::vector<std::uint8_t> kvs_get(Ipv4Addr src, Ipv4Addr dst,
                                  std::uint16_t tenant, std::uint64_t key,
                                  std::uint32_t request_id) {
  KvsHeader h;
  h.op = KvsOp::kGet;
  h.tenant = tenant;
  h.key = key;
  h.request_id = request_id;
  return FrameBuilder()
      .eth(kSrcMac, kDstMac)
      .ipv4(src, dst)
      .udp(40000, kKvsUdpPort)
      .kvs(h)
      .build();
}

std::vector<std::uint8_t> kvs_set(Ipv4Addr src, Ipv4Addr dst,
                                  std::uint16_t tenant, std::uint64_t key,
                                  std::uint32_t request_id,
                                  std::size_t value_size) {
  KvsHeader h;
  h.op = KvsOp::kSet;
  h.tenant = tenant;
  h.key = key;
  h.value_length = static_cast<std::uint32_t>(value_size);
  h.request_id = request_id;
  return FrameBuilder()
      .eth(kSrcMac, kDstMac)
      .ipv4(src, dst)
      .udp(40000, kKvsUdpPort)
      .kvs(h)
      .payload_size(value_size)
      .build();
}

std::vector<std::uint8_t> kvs_get_reply(Ipv4Addr src, Ipv4Addr dst,
                                        std::uint16_t tenant,
                                        std::uint64_t key,
                                        std::uint32_t request_id,
                                        std::span<const std::uint8_t> value) {
  KvsHeader h;
  h.op = KvsOp::kGetReply;
  h.tenant = tenant;
  h.key = key;
  h.value_length = static_cast<std::uint32_t>(value.size());
  h.request_id = request_id;
  return FrameBuilder()
      .eth(kDstMac, kSrcMac)
      .ipv4(src, dst)
      .udp(kKvsUdpPort, 40000)
      .kvs(h)
      .payload(value)
      .build();
}

}  // namespace frames

}  // namespace panic
