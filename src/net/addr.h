// Network address types with parsing and formatting.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace panic {

/// 48-bit Ethernet MAC address.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  explicit constexpr MacAddr(std::array<std::uint8_t, 6> bytes)
      : bytes_(bytes) {}

  /// Parses "aa:bb:cc:dd:ee:ff"; returns nullopt on malformed input.
  static std::optional<MacAddr> parse(std::string_view text);

  /// Broadcast address ff:ff:ff:ff:ff:ff.
  static constexpr MacAddr broadcast() {
    return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  const std::array<std::uint8_t, 6>& bytes() const { return bytes_; }
  std::string to_string() const;

  bool is_broadcast() const { return *this == broadcast(); }
  bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }

  constexpr auto operator<=>(const MacAddr&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

/// IPv4 address, stored in host order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  explicit constexpr Ipv4Addr(std::uint32_t host_order)
      : value_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad "10.0.0.1"; returns nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  std::uint32_t value() const { return value_; }
  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace panic
