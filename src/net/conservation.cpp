#include "net/conservation.h"

#include <sstream>

namespace panic {

ConservationLedger& ConservationLedger::instance() {
  // Leaked for the same reason as MessagePool: deleters (and therefore
  // on_destroy) may run during static destruction.
  static ConservationLedger* ledger = new ConservationLedger();
  return *ledger;
}

void ConservationLedger::reset() {
  created_ = 0;
  destroyed_ = 0;
  delivered_ = 0;
  dropped_ = 0;
  consumed_ = 0;
  faulted_ = 0;
  shed_ = 0;
  lost_ = 0;
}

ConservationLedger::Report ConservationLedger::report() const {
  Report r;
  r.created = created_;
  r.delivered = delivered_;
  r.dropped = dropped_;
  r.consumed = consumed_;
  r.faulted = faulted_;
  r.shed = shed_;
  r.lost = lost_;
  r.live = created_ >= destroyed_ ? created_ - destroyed_ : 0;
  return r;
}

std::string ConservationLedger::Report::to_string() const {
  std::ostringstream os;
  os << "created=" << created << " delivered=" << delivered
     << " dropped=" << dropped << " consumed=" << consumed
     << " faulted=" << faulted << " shed=" << shed << " lost=" << lost
     << " live=" << live
     << (conserved() ? " [conserved]" : " [VIOLATED]");
  return os.str();
}

}  // namespace panic
