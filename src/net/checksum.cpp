#include "net/checksum.h"

#include <array>

namespace panic {

std::uint32_t internet_checksum_partial(std::span<const std::uint8_t> data,
                                        std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;
  }
  return sum;
}

std::uint16_t internet_checksum_finish(std::uint32_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return internet_checksum_finish(internet_checksum_partial(data, 0));
}

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const auto table = make_crc_table();
  std::uint32_t c = seed;
  for (std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace panic
