#include "net/message_pool.h"

#include <cassert>

#include "net/message.h"

namespace panic {

MessagePool& MessagePool::instance() {
  // Leaked deliberately: MessagePtr deleters may run during static
  // destruction (e.g. a test fixture's simulator), after a function-local
  // static pool would already be gone.  Still reachable at exit, so leak
  // checkers stay quiet.
  static MessagePool* pool = new MessagePool();
  return *pool;
}

Message* MessagePool::acquire() {
  ++stats_.live;
  if (stats_.live > stats_.live_high_watermark) {
    stats_.live_high_watermark = stats_.live;
  }
  if (free_head_ == nullptr) {
    ++stats_.pool_misses;
    return new Message();
  }
  ++stats_.pool_hits;
  Message* msg = free_head_;
  free_head_ = msg->pool_next;
  --free_count_;
  msg->pool_next = nullptr;
  msg->in_pool = false;
  stats_.bytes_reused += msg->data.capacity();
  msg->reset_for_reuse();
  return msg;
}

void MessagePool::release(Message* msg) noexcept {
  if (msg == nullptr) return;
  assert(!msg->in_pool && "message recycled twice");
  ++stats_.recycled;
  --stats_.live;
  msg->in_pool = true;
  msg->pool_next = free_head_;
  free_head_ = msg;
  ++free_count_;
}

void MessagePool::trim() {
  while (free_head_ != nullptr) {
    Message* next = free_head_->pool_next;
    delete free_head_;
    free_head_ = next;
  }
  free_count_ = 0;
}

}  // namespace panic
