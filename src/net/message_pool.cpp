#include "net/message_pool.h"

#include <cstdio>
#include <cstdlib>

#include "net/conservation.h"
#include "net/message.h"

namespace panic {

MessagePool& MessagePool::instance() {
  // Leaked deliberately: MessagePtr deleters may run during static
  // destruction (e.g. a test fixture's simulator), after a function-local
  // static pool would already be gone.  Still reachable at exit, so leak
  // checkers stay quiet.
  static MessagePool* pool = new MessagePool();
  return *pool;
}

Message* MessagePool::acquire() {
  Message* msg = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.live;
    if (stats_.live > stats_.live_high_watermark) {
      stats_.live_high_watermark = stats_.live;
    }
    if (free_head_ == nullptr) {
      ++stats_.pool_misses;
    } else {
      ++stats_.pool_hits;
      msg = free_head_;
      free_head_ = msg->pool_next;
      --free_count_;
      stats_.bytes_reused += msg->data.capacity();
    }
  }
  if (msg == nullptr) return new Message();  // heap work outside the lock
  msg->pool_next = nullptr;
  msg->in_pool = false;
  msg->reset_for_reuse();
  return msg;
}

void MessagePool::release(Message* msg) noexcept {
  if (msg == nullptr) return;
  if (msg->in_pool) {
    // A double-recycle means two owners freed the same message — from here
    // on the free list is corrupt and any "new" message may alias a live
    // one.  This must be fatal in every build type: an assert-only check
    // let the corruption pass silently through Release CI.
    std::fprintf(stderr,
                 "MessagePool: message %llu recycled twice (double free of "
                 "a pooled Message)\n",
                 static_cast<unsigned long long>(msg->id.value));
    std::abort();
  }
  ConservationLedger::instance().on_destroy(msg->fate);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.recycled;
  --stats_.live;
  msg->in_pool = true;
  msg->pool_next = free_head_;
  free_head_ = msg;
  ++free_count_;
}

void MessagePool::reserve(std::size_t target) {
  std::size_t deficit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_count_ < target) deficit = target - free_count_;
  }
  if (deficit == 0) return;
  // Heap work outside the lock; splice the chain in with one swap.
  Message* head = nullptr;
  Message* tail = nullptr;
  for (std::size_t i = 0; i < deficit; ++i) {
    Message* msg = new Message();
    msg->in_pool = true;
    msg->pool_next = head;
    head = msg;
    if (tail == nullptr) tail = msg;
  }
  std::lock_guard<std::mutex> lock(mu_);
  tail->pool_next = free_head_;
  free_head_ = head;
  free_count_ += deficit;
  stats_.prewarmed += deficit;
}

void MessagePool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  while (free_head_ != nullptr) {
    Message* next = free_head_->pool_next;
    delete free_head_;
    free_head_ = next;
  }
  free_count_ = 0;
}

}  // namespace panic
