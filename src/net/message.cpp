#include "net/message.h"

#include <atomic>

#include "net/conservation.h"
#include "net/message_pool.h"

namespace panic {

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPacket: return "packet";
    case MessageKind::kDmaRead: return "dma-read";
    case MessageKind::kDmaWrite: return "dma-write";
    case MessageKind::kDmaCompletion: return "dma-completion";
    case MessageKind::kDescriptorFetch: return "descriptor-fetch";
    case MessageKind::kInterrupt: return "interrupt";
    case MessageKind::kRdmaRequest: return "rdma-request";
    case MessageKind::kDoorbell: return "doorbell";
  }
  return "?";
}

const char* to_string(MessageFate fate) {
  switch (fate) {
    case MessageFate::kInFlight: return "in-flight";
    case MessageFate::kDelivered: return "delivered";
    case MessageFate::kDropped: return "dropped";
    case MessageFate::kConsumed: return "consumed";
    case MessageFate::kFaulted: return "faulted";
    case MessageFate::kShed: return "shed";
  }
  return "?";
}

void Message::reset_for_reuse() {
  id = MessageId{};
  kind = MessageKind::kPacket;
  data.clear();   // keeps capacity: the recycled packet-byte buffer
  tenant = TenantId{};
  flow = FlowId{};
  chain.clear();  // keeps the hop vector's capacity too
  slack = 0;
  meta = MessageMeta{};
  meta_valid = false;
  reply_to = EngineId{};
  dma_addr = 0;
  dma_bytes = 0;
  ingress_port = EngineId{};
  egress_port = EngineId{};
  from_host = false;
  created_at = 0;
  nic_ingress_at = 0;
  rmt_passes = 0;
  noc_hops = 0;
  engines_visited = 0;
  fate = MessageFate::kInFlight;
}

void MessageDeleter::operator()(Message* msg) const noexcept {
  MessagePool::instance().release(msg);
}

MessagePtr make_message(MessageKind kind) {
  static std::atomic<std::uint64_t> next_id{1};
  ConservationLedger::instance().on_create();
  MessagePtr msg(MessagePool::instance().acquire());
  msg->id = MessageId{next_id.fetch_add(1, std::memory_order_relaxed)};
  msg->kind = kind;
  return msg;
}

void recycle_message(MessagePtr msg) {
  msg.reset();  // the deleter does the recycling
}

}  // namespace panic
