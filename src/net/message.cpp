#include "net/message.h"

#include <atomic>

namespace panic {

const char* to_string(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPacket: return "packet";
    case MessageKind::kDmaRead: return "dma-read";
    case MessageKind::kDmaWrite: return "dma-write";
    case MessageKind::kDmaCompletion: return "dma-completion";
    case MessageKind::kDescriptorFetch: return "descriptor-fetch";
    case MessageKind::kInterrupt: return "interrupt";
    case MessageKind::kRdmaRequest: return "rdma-request";
    case MessageKind::kDoorbell: return "doorbell";
  }
  return "?";
}

MessagePtr make_message(MessageKind kind) {
  static std::atomic<std::uint64_t> next_id{1};
  auto msg = std::make_unique<Message>();
  msg->id = MessageId{next_id.fetch_add(1, std::memory_order_relaxed)};
  msg->kind = kind;
  return msg;
}

}  // namespace panic
