#include "net/pcap_writer.h"

namespace panic {

namespace {
constexpr std::uint32_t kMagic = 0xA1B2C3D4;   // microsecond pcap
constexpr std::uint32_t kLinkTypeEthernet = 1;  // LINKTYPE_ETHERNET
}  // namespace

PcapWriter::PcapWriter(const std::string& path, Frequency clock)
    : clock_(clock) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  u32(kMagic);
  u32(0x00040002);  // version 2.4 (major, minor as two u16 LE)
  u32(0);           // thiszone
  u32(0);           // sigfigs
  u32(65535);       // snaplen
  u32(kLinkTypeEthernet);
}

PcapWriter::~PcapWriter() { close(); }

void PcapWriter::u32(std::uint32_t v) {
  // Little-endian, the native byte order pcap readers expect with this
  // magic on every common platform.
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  std::fwrite(bytes, 1, 4, file_);
}

void PcapWriter::write(std::span<const std::uint8_t> frame, Cycle at) {
  if (file_ == nullptr) return;
  const double us = clock_.cycles_to_ns(at) / 1000.0;
  const auto sec = static_cast<std::uint32_t>(us / 1e6);
  const auto usec =
      static_cast<std::uint32_t>(us - static_cast<double>(sec) * 1e6);
  u32(sec);
  u32(usec);
  u32(static_cast<std::uint32_t>(frame.size()));  // captured length
  u32(static_cast<std::uint32_t>(frame.size()));  // original length
  std::fwrite(frame.data(), 1, frame.size(), file_);
  ++frames_;
}

void PcapWriter::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace panic
