#include "engines/engine.h"

#include <cassert>

#include "telemetry/telemetry.h"

namespace panic::engines {

void Engine::register_telemetry(telemetry::Telemetry& t) {
  Component::register_telemetry(t);
  auto& m = t.metrics();
  const std::string p = metric_prefix();
  m.expose_counter(p + "processed", &processed_);
  m.expose_counter(p + "busy_cycles", &busy_cycles_);
  m.expose_histogram(p + "service_cycles", &service_hist_);
  m.expose_gauge(p + "staging_high_watermark", [this] {
    return static_cast<double>(out_.high_watermark());
  });
  m.expose_counter(p + "faulted_discards", &faulted_discards_);
  m.expose_counter(p + "corrupted", &corrupted_);
  m.expose_counter(p + "resteered", &resteered_);
  m.expose_counter(p + "no_route_parked", &no_route_parked_);
  m.expose_counter(p + "no_route_shed", &no_route_shed_);
  m.expose_gauge(p + "no_route_watermark", [this] {
    return static_cast<double>(parked_watermark_);
  });
  queue_.register_metrics(m, "engine." + name() + ".queue");
  queue_.bind_tracer(tracer(), trace_tag());
}

Engine::Engine(std::string name, noc::NetworkInterface* ni,
               const EngineConfig& config)
    : Component(std::move(name)),
      ni_(ni),
      config_(config),
      queue_(config.sched_policy, config.queue_capacity,
             config.drop_policy) {
  assert(ni_ != nullptr);
  ni_->set_client(this);
}

void Engine::drain_arrivals(Cycle now) {
  while (MessagePtr msg = ni_->try_receive(now)) {
    if (corrupt_p_ > 0.0 && now < corrupt_until_) maybe_corrupt(*msg, now);
    // Adopt the slack of the hop that addressed this engine; the hop is
    // consumed when the message is forwarded onward.
    if (const auto hop = msg->chain.current();
        hop.has_value() && hop->engine == id()) {
      msg->slack = hop->slack;
    }
    queue_.try_enqueue(std::move(msg), now);  // full queue => drop
  }
}

void Engine::maybe_corrupt(Message& msg, Cycle now) {
  // One bernoulli draw per arrival keeps the stream aligned across runs
  // regardless of payload sizes.
  if (!corrupt_rng_.bernoulli(corrupt_p_) || msg.data.empty()) return;
  const std::size_t byte =
      corrupt_rng_.uniform_int(0, msg.data.size() - 1);
  msg.data[byte] ^= 0x20;
  ++corrupted_;
  trace(telemetry::TraceEventKind::kFault, now, msg.id,
        static_cast<std::uint32_t>(byte));
}

void Engine::emit(MessagePtr msg, EngineId dst, Cycle now) {
  assert(msg != nullptr);
  trace(telemetry::TraceEventKind::kEmit, now, msg->id, dst.value);
  out_.try_push(Outbound{std::move(msg), dst}, now);
  // emit() is also an external entry point (e.g. a MAC's deliver_rx), so
  // a quiescent engine must wake to drain its staging buffer.
  request_wake(now);
}

void Engine::forward_along_chain(MessagePtr msg, Cycle now) {
  // Consume the hop naming this engine, if it does.
  if (const auto hop = msg->chain.current();
      hop.has_value() && hop->engine == id()) {
    msg->chain.advance();
  }
  auto next = lookup_.route(*msg);
  if (!next.has_value() || *next == id()) {
    msg->set_fate(MessageFate::kConsumed);
    return;  // terminates here
  }
  if (steering_ != nullptr && !steering_->empty() &&
      steering_->is_dead(*next)) {
    const auto fallback = steering_->resolve(*next);
    if (!fallback.has_value()) {
      if (config_.no_route == fault::NoRoutePolicy::kBackpressure) {
        // Degraded-mode admission: hold the message (bounded) until a
        // revive/spare re-opens a route; shed when the buffer is full.
        if (parked_.size() < config_.no_route_depth) {
          parked_gen_ = steering_->generation();
          parked_.push_back(std::move(msg));
          ++no_route_parked_;
          if (parked_.size() > parked_watermark_) {
            parked_watermark_ = parked_.size();
          }
          return;
        }
        msg->set_fate(MessageFate::kShed);
        trace(telemetry::TraceEventKind::kFault, now, msg->id, next->value);
        ++no_route_shed_;
        return;
      }
      // No live equivalent exists: the message dies here, attributed to
      // the injected fault (not lost).
      msg->set_fate(MessageFate::kFaulted);
      trace(telemetry::TraceEventKind::kFault, now, msg->id, next->value);
      ++faulted_discards_;
      return;
    }
    // Rewrite the chain hop naming the dead engine so the fallback
    // consumes it (keeping the slack) and the chain tail stays reachable.
    if (const auto hop = msg->chain.current();
        hop.has_value() && hop->engine == *next) {
      msg->chain.reroute_current(*fallback);
    }
    trace(telemetry::TraceEventKind::kFault, now, msg->id, fallback->value);
    ++resteered_;
    next = fallback;
  }
  emit(std::move(msg), *next, now);
}

void Engine::drain_output(Cycle now) {
  while (ni_->can_inject()) {
    auto ob = out_.try_pop(now);
    if (!ob.has_value()) break;
    ni_->inject(std::move(ob->msg), ob->dst, now);
  }
}

void Engine::tick(Cycle now) {
  if (dead_) {
    // A dead tile sinks its arrivals so the NoC stays lossless; every
    // discarded message is attributed to the fault.
    discard_all(now);
    return;
  }
  if (now < stalled_until_) return;  // frozen: observable no-op

  retry_parked(now);
  drain_arrivals(now);

  // Complete the in-service message.
  if (in_service_ != nullptr && now >= service_done_) {
    MessagePtr msg = std::move(in_service_);
    ++msg->engines_visited;
    ++processed_;
    trace(telemetry::TraceEventKind::kServiceEnd, now, msg->id,
          static_cast<std::uint32_t>(service_cycles_));
    if (process(*msg, now)) {
      forward_along_chain(std::move(msg), now);
    } else {
      // Consumed by the offload (kept alive until here; the paths that
      // deliver inside process() already set a stronger fate).
      msg->set_fate(MessageFate::kConsumed);
    }
  }

  // Start the next message if idle and there is room to stage the result.
  if (in_service_ == nullptr && !queue_.empty() && can_stage()) {
    in_service_ = queue_.dequeue(now);
    Cycles t = service_time(*in_service_);
    if (t == 0) t = 1;
    if (now < degrade_until_ && degrade_factor_ != 1.0) {
      t = static_cast<Cycles>(static_cast<double>(t) * degrade_factor_);
      if (t == 0) t = 1;
    }
    service_hist_.record(t);
    service_done_ = now + t;
    service_cycles_ = t;
    busy_cycles_ += t;
    trace(telemetry::TraceEventKind::kServiceStart, now, in_service_->id,
          static_cast<std::uint32_t>(t));
  }

  drain_output(now);
}

void Engine::discard_all(Cycle now) {
  const auto discard = [&](MessagePtr msg) {
    if (msg == nullptr) return;
    msg->set_fate(MessageFate::kFaulted);
    trace(telemetry::TraceEventKind::kFault, now, msg->id, 0);
    ++faulted_discards_;
  };
  while (MessagePtr msg = ni_->try_receive(now)) discard(std::move(msg));
  for (MessagePtr& msg : queue_.evict_all()) discard(std::move(msg));
  discard(std::move(in_service_));
  while (!parked_.empty()) {
    discard(std::move(parked_.front()));
    parked_.pop_front();
  }
  // Staged outbounds were pushed with ready cycles <= now, so this drains
  // the staging buffer completely.
  while (auto ob = out_.try_pop(now)) discard(std::move(ob->msg));
}

void Engine::fault_kill(Cycle now) {
  dead_ = true;
  discard_all(now);
}

void Engine::fault_revive(Cycle now) {
  dead_ = false;
  stalled_until_ = 0;
  degrade_factor_ = 1.0;
  degrade_until_ = 0;
  corrupt_p_ = 0.0;
  corrupt_until_ = 0;
  request_wake(now);
}

void Engine::retry_parked(Cycle now) {
  if (parked_.empty() || steering_ == nullptr) return;
  if (steering_->generation() == parked_gen_) return;
  parked_gen_ = steering_->generation();
  // Re-forward in arrival order; unresolved messages re-park (the swap
  // keeps the loop finite when the route is still closed).
  std::deque<MessagePtr> retry;
  retry.swap(parked_);
  for (MessagePtr& msg : retry) forward_along_chain(std::move(msg), now);
}

void Engine::fault_stall(Cycle now, Cycles duration) {
  stalled_until_ = now + duration;
}

void Engine::fault_degrade(double factor, Cycle until) {
  degrade_factor_ = factor <= 0.0 ? 1.0 : factor;
  degrade_until_ = until;
}

void Engine::fault_corrupt(double probability, Cycle until,
                           std::uint64_t seed) {
  corrupt_p_ = probability;
  corrupt_until_ = until;
  corrupt_rng_ = Rng(seed);
}

Cycle Engine::next_wake(Cycle now) const {
  if (dead_) return kNeverWake;  // arrivals wake us through the NI
  if (now < stalled_until_) return stalled_until_;
  // Parked no-route messages poll for a steering-generation change (the
  // retry itself is a cheap stamp compare while the route stays closed).
  if (!parked_.empty()) return now + 1;
  // Staging buffer drains one message per tick while the NI has room, and
  // the NI can free a slot any cycle — retry every cycle until empty.
  if (!out_.empty()) return now + 1;
  // Nothing to do before the in-service message completes; arrivals in
  // between wake us through the NI and are absorbed by drain_arrivals.
  if (in_service_ != nullptr) return service_done_;
  // Queued but not started: only possible when staging is configured too
  // small to ever admit work; keep dense behaviour.
  if (!queue_.empty()) return now + 1;
  return kNeverWake;
}

}  // namespace panic::engines
