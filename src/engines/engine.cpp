#include "engines/engine.h"

#include <cassert>

#include "telemetry/telemetry.h"

namespace panic::engines {

void Engine::register_telemetry(telemetry::Telemetry& t) {
  Component::register_telemetry(t);
  auto& m = t.metrics();
  const std::string p = metric_prefix();
  m.expose_counter(p + "processed", &processed_);
  m.expose_counter(p + "busy_cycles", &busy_cycles_);
  m.expose_histogram(p + "service_cycles", &service_hist_);
  m.expose_gauge(p + "staging_high_watermark", [this] {
    return static_cast<double>(out_.high_watermark());
  });
  queue_.register_metrics(m, "engine." + name() + ".queue");
  queue_.bind_tracer(tracer(), trace_tag());
}

Engine::Engine(std::string name, noc::NetworkInterface* ni,
               const EngineConfig& config)
    : Component(std::move(name)),
      ni_(ni),
      config_(config),
      queue_(config.sched_policy, config.queue_capacity,
             config.drop_policy) {
  assert(ni_ != nullptr);
  ni_->set_client(this);
}

void Engine::drain_arrivals(Cycle now) {
  while (MessagePtr msg = ni_->try_receive(now)) {
    // Adopt the slack of the hop that addressed this engine; the hop is
    // consumed when the message is forwarded onward.
    if (const auto hop = msg->chain.current();
        hop.has_value() && hop->engine == id()) {
      msg->slack = hop->slack;
    }
    queue_.try_enqueue(std::move(msg), now);  // full queue => drop
  }
}

void Engine::emit(MessagePtr msg, EngineId dst, Cycle now) {
  assert(msg != nullptr);
  trace(telemetry::TraceEventKind::kEmit, now, msg->id, dst.value);
  out_.try_push(Outbound{std::move(msg), dst}, now);
  // emit() is also an external entry point (e.g. a MAC's deliver_rx), so
  // a quiescent engine must wake to drain its staging buffer.
  request_wake(now);
}

void Engine::forward_along_chain(MessagePtr msg, Cycle now) {
  // Consume the hop naming this engine, if it does.
  if (const auto hop = msg->chain.current();
      hop.has_value() && hop->engine == id()) {
    msg->chain.advance();
  }
  const auto next = lookup_.route(*msg);
  if (!next.has_value() || *next == id()) {
    return;  // terminates here
  }
  emit(std::move(msg), *next, now);
}

void Engine::drain_output(Cycle now) {
  while (ni_->can_inject()) {
    auto ob = out_.try_pop(now);
    if (!ob.has_value()) break;
    ni_->inject(std::move(ob->msg), ob->dst, now);
  }
}

void Engine::tick(Cycle now) {
  drain_arrivals(now);

  // Complete the in-service message.
  if (in_service_ != nullptr && now >= service_done_) {
    MessagePtr msg = std::move(in_service_);
    ++msg->engines_visited;
    ++processed_;
    trace(telemetry::TraceEventKind::kServiceEnd, now, msg->id,
          static_cast<std::uint32_t>(service_cycles_));
    if (process(*msg, now)) {
      forward_along_chain(std::move(msg), now);
    }
  }

  // Start the next message if idle and there is room to stage the result.
  if (in_service_ == nullptr && !queue_.empty() && can_stage()) {
    in_service_ = queue_.dequeue(now);
    Cycles t = service_time(*in_service_);
    if (t == 0) t = 1;
    service_hist_.record(t);
    service_done_ = now + t;
    service_cycles_ = t;
    busy_cycles_ += t;
    trace(telemetry::TraceEventKind::kServiceStart, now, in_service_->id,
          static_cast<std::uint32_t>(t));
  }

  drain_output(now);
}

Cycle Engine::next_wake(Cycle now) const {
  // Staging buffer drains one message per tick while the NI has room, and
  // the NI can free a slot any cycle — retry every cycle until empty.
  if (!out_.empty()) return now + 1;
  // Nothing to do before the in-service message completes; arrivals in
  // between wake us through the NI and are absorbed by drain_arrivals.
  if (in_service_ != nullptr) return service_done_;
  // Queued but not started: only possible when staging is configured too
  // small to ever admit work; keep dense behaviour.
  if (!queue_.empty()) return now + 1;
  return kNeverWake;
}

}  // namespace panic::engines
