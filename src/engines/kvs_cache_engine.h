// On-NIC KVS cache engine (§2.2/§3.2): "the NIC can cache the location of
// values for hot keys and use DMA to directly return replies, completely
// bypassing the CPU."
//
// Two cache modes:
//  * kLocation (the paper's design): the cache maps hot keys to host
//    memory locations; a GET hit is forwarded to the RDMA engine, which
//    DMAs the value and generates the reply.
//  * kValue: small values are cached in engine SRAM and the reply is
//    generated right here (ablation of the design choice).
//
// Misses are forwarded along the chain (to the DMA engine → host receive
// queue, per the §3.2 walk-through).  SETs update the cache index and are
// forwarded to the host log.
#pragma once

#include <list>
#include <unordered_map>

#include "engines/engine.h"
#include "engines/host_memory.h"

namespace panic::engines {

enum class KvsCacheMode { kLocation, kValue };

struct KvsCacheConfig {
  KvsCacheMode mode = KvsCacheMode::kLocation;
  std::size_t capacity_entries = 1024;
  Cycles lookup_cycles = 4;  ///< SRAM cache lookup
  EngineId rdma_engine;      ///< where location hits go
  EngineId reply_route;      ///< where kValue-mode replies are injected
                             ///< (normally an RMT engine for egress routing)
};

class KvsCacheEngine : public Engine {
 public:
  KvsCacheEngine(std::string name, noc::NetworkInterface* ni,
                 const EngineConfig& config, const KvsCacheConfig& kvs,
                 HostMemory* host);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t sets() const { return sets_; }
  std::size_t entries() const { return index_.size(); }

  void register_telemetry(telemetry::Telemetry& t) override;

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  struct Entry {
    std::uint64_t host_addr = 0;
    std::uint32_t length = 0;
    std::vector<std::uint8_t> value;  // kValue mode only
    std::list<std::uint64_t>::iterator lru_it;
  };

  void touch(std::uint64_t key, Entry& entry);
  void insert(std::uint64_t key, Entry entry);

  bool handle_get(Message& msg, Cycle now);
  bool handle_set(Message& msg, Cycle now);

  KvsCacheConfig kvs_;
  HostMemory* host_;

  std::unordered_map<std::uint64_t, Entry> index_;
  std::list<std::uint64_t> lru_;  // front = most recent

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t sets_ = 0;
};

}  // namespace panic::engines
