#include "engines/pcie_engine.h"

#include "telemetry/telemetry.h"

namespace panic::engines {

PcieEngine::PcieEngine(std::string name, noc::NetworkInterface* ni,
                       const EngineConfig& config, const PcieConfig& pcie)
    : Engine(std::move(name), ni, config), pcie_(pcie) {}

Cycles PcieEngine::service_time(const Message& msg) const {
  (void)msg;
  return 1;
}

void PcieEngine::ring_tx_doorbell(std::uint64_t descriptor_addr, Cycle now) {
  auto doorbell = make_message(MessageKind::kDoorbell);
  doorbell->dma_addr = descriptor_addr;
  queue().try_enqueue(std::move(doorbell), now);
  // Doorbells arrive from the host driver, outside the NI wake path.
  request_wake(now);
}

void PcieEngine::handle_doorbell(Message& msg, Cycle now) {
  auto fetch = make_message(MessageKind::kDescriptorFetch);
  fetch->dma_addr = msg.dma_addr;
  fetch->reply_to = id();
  fetch->meta.cache_hint = kFetchDescriptor;
  fetch->meta_valid = true;
  const auto route = lookup_table().route(*fetch);
  if (route.has_value() && *route != id()) {
    emit(std::move(fetch), *route, now);
  } else {
    fetch->set_fate(MessageFate::kConsumed);
  }
}

void PcieEngine::handle_completion(Message& msg, Cycle now) {
  if (msg.meta.cache_hint == kFetchDescriptor) {
    ByteReader r(msg.data);
    const auto desc = TxDescriptor::parse(r);
    if (!desc.has_value() || desc->frame_len == 0 ||
        desc->port >= pcie_.eth_ports.size()) {
      ++tx_errors_;
      return;
    }
    pending_tx_[desc->frame_addr] = PendingTx{*desc, msg.dma_addr};

    auto fetch = make_message(MessageKind::kDmaRead);
    fetch->dma_addr = desc->frame_addr;
    fetch->dma_bytes = desc->frame_len;
    fetch->reply_to = id();
    fetch->tenant = TenantId{desc->tenant};
    fetch->meta.cache_hint = kFetchFrame;
    fetch->meta_valid = true;
    const auto route = lookup_table().route(*fetch);
    if (route.has_value() && *route != id()) {
      emit(std::move(fetch), *route, now);
    } else {
      fetch->set_fate(MessageFate::kConsumed);
    }
    return;
  }

  if (msg.meta.cache_hint == kFetchFrame) {
    const auto it = pending_tx_.find(msg.dma_addr);
    if (it == pending_tx_.end()) {
      ++tx_errors_;
      return;
    }
    const PendingTx pending = it->second;
    pending_tx_.erase(it);

    auto packet = make_message(MessageKind::kPacket);
    packet->data = std::move(msg.data);
    packet->from_host = true;
    packet->tenant = TenantId{pending.desc.tenant};
    packet->egress_port = pcie_.eth_ports[pending.desc.port];
    packet->nic_ingress_at = now;
    packet->created_at = now;
    ++tx_launched_;
    if (tx_launched_cb_) tx_launched_cb_(pending.desc_addr, now);
    // Toward the RMT pipeline, which classifies TX traffic (checksum,
    // optional encryption) and routes it to its egress port.
    const auto route = lookup_table().route(*packet);
    if (route.has_value() && *route != id()) {
      emit(std::move(packet), *route, now);
    } else {
      packet->set_fate(MessageFate::kConsumed);
    }
    return;
  }
  // Unmarked completion: not ours; drop.
}

bool PcieEngine::process(Message& msg, Cycle now) {
  switch (msg.kind) {
    case MessageKind::kInterrupt:
      if (now >= window_expires_) {
        ++delivered_;
        window_expires_ = now + pcie_.coalesce_window;
      } else {
        ++coalesced_;
      }
      return false;
    case MessageKind::kDoorbell:
      handle_doorbell(msg, now);
      return false;
    case MessageKind::kDmaCompletion:
      handle_completion(msg, now);
      return false;
    default:
      return true;  // unrelated traffic continues along its chain
  }
}

void PcieEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "interrupts_delivered", &delivered_);
  m.expose_counter(metric_prefix() + "interrupts_coalesced", &coalesced_);
  m.expose_counter(metric_prefix() + "tx_launched", &tx_launched_);
  m.expose_counter(metric_prefix() + "tx_errors", &tx_errors_);
}

}  // namespace panic::engines
