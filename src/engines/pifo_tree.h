// A small PIFO tree (Programmable Packet Scheduling, PAPERS.md) for
// hierarchical policies: a root PIFO schedules CLASSES while one leaf
// PIFO per class schedules the messages inside it.  Each enqueue inserts
// one element at both levels; each dequeue pops the root to pick the
// winning class, then pops that class's leaf.
//
// Both levels run ordinary rank programs (SchedSpec), so e.g. weighted
// fair queueing ACROSS tenants composed with earliest-deadline-first
// WITHIN each tenant is `PifoTree(wfq_spec, edf_spec, cap)`.  The root
// program sees the enqueued message with `tenant` rebound to the class
// id, which is what lets the stock wfq/stfq/prio built-ins (and their
// `weight` tables) express inter-class policy unchanged.
//
// This is the hierarchy block ROADMAP item 2 (SuperNIC-style per-tenant
// policy composition) builds on; the flat SchedulerQueue stays the
// per-engine hot path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/units.h"
#include "engines/sched_queue.h"

namespace panic::engines {

class PifoTree {
 public:
  /// `leaf_capacity` bounds each class's leaf queue; a full leaf
  /// tail-drops the arrival (the root never holds an entry for a message
  /// that was not admitted).
  PifoTree(const SchedSpec& root, const SchedSpec& leaf,
           std::size_t leaf_capacity);

  /// Enqueues `msg` into class `klass`.  Returns false (and drops the
  /// message) if that class's leaf is full.
  bool try_enqueue(MessagePtr msg, Cycle now, std::uint16_t klass);

  /// Pops the root to pick a class, then that class's minimum-rank
  /// message (nullptr if the tree is empty).
  MessagePtr dequeue(Cycle now);

  std::size_t size() const { return root_.size(); }
  bool empty() const { return root_.empty(); }
  std::uint64_t dropped() const { return dropped_; }

 private:
  struct RootItem {
    std::uint64_t rank;
    std::uint64_t seq;
    std::uint16_t klass;
  };
  struct RootOrder {
    // Heap comparator: true when a dequeues later than b — (rank, seq)
    // total order, same contract as SchedulerQueue.
    bool operator()(const RootItem& a, const RootItem& b) const {
      if (a.rank != b.rank) return a.rank > b.rank;
      return a.seq > b.seq;
    }
  };

  SchedulerQueue& leaf_for(std::uint16_t klass);

  SchedSpec root_spec_;
  SchedSpec leaf_spec_;
  std::size_t leaf_capacity_;
  std::shared_ptr<const RankProgram> root_program_;
  std::vector<RootItem> root_;  // heap under RootOrder
  RankState root_state_;
  std::vector<std::uint64_t> root_scratch_;
  std::uint64_t root_vtime_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  std::map<std::uint16_t, std::unique_ptr<SchedulerQueue>> leaves_;
};

}  // namespace panic::engines
