#include "engines/regex_nfa.h"

namespace panic::engines {

// Recursive-descent compiler producing Thompson NFA fragments.
// Grammar:  alt := cat ('|' cat)*
//           cat := rep*
//           rep := atom ('*' | '+' | '?')?
//           atom := literal | '.' | class | '(' alt ')'
class Regex::Compiler {
 public:
  explicit Compiler(std::string_view pattern, std::vector<State>& states)
      : pattern_(pattern), states_(states) {}

  /// Fragment: start state + list of dangling "out" slots to patch.
  struct Frag {
    int start = -1;
    std::vector<int*> outs;  // invalidated by state vector growth — so we
                             // store (state index, which slot) instead
    std::vector<std::pair<int, int>> dangling;  // (state, slot 0|1)
  };

  std::optional<int> compile() {
    auto frag = parse_alt();
    if (!frag.has_value() || pos_ != pattern_.size()) return std::nullopt;
    const int accept = add_state(State::Kind::kAccept);
    patch(*frag, accept);
    return frag->start;
  }

 private:
  int add_state(State::Kind kind) {
    State s;
    s.kind = kind;
    states_.push_back(std::move(s));
    return static_cast<int>(states_.size() - 1);
  }

  void patch(Frag& frag, int target) {
    for (const auto& [state, slot] : frag.dangling) {
      (slot == 0 ? states_[static_cast<std::size_t>(state)].next
                 : states_[static_cast<std::size_t>(state)].next2) = target;
    }
    frag.dangling.clear();
  }

  bool eof() const { return pos_ >= pattern_.size(); }
  char peek() const { return pattern_[pos_]; }

  std::optional<Frag> parse_alt() {
    auto left = parse_cat();
    if (!left.has_value()) return std::nullopt;
    while (!eof() && peek() == '|') {
      ++pos_;
      auto right = parse_cat();
      if (!right.has_value()) return std::nullopt;
      const int split = add_state(State::Kind::kSplit);
      states_[static_cast<std::size_t>(split)].next = left->start;
      states_[static_cast<std::size_t>(split)].next2 = right->start;
      Frag merged;
      merged.start = split;
      merged.dangling = std::move(left->dangling);
      merged.dangling.insert(merged.dangling.end(),
                             right->dangling.begin(),
                             right->dangling.end());
      left = std::move(merged);
    }
    return left;
  }

  std::optional<Frag> parse_cat() {
    Frag result;
    while (!eof() && peek() != '|' && peek() != ')') {
      auto piece = parse_rep();
      if (!piece.has_value()) return std::nullopt;
      if (result.start < 0) {
        result = std::move(*piece);
      } else {
        patch(result, piece->start);
        result.dangling = std::move(piece->dangling);
      }
    }
    if (result.start < 0) {
      // Empty expression: a split that immediately accepts (epsilon).
      const int s = add_state(State::Kind::kSplit);
      result.start = s;
      result.dangling = {{s, 0}, {s, 1}};
    }
    return result;
  }

  std::optional<Frag> parse_rep() {
    auto atom = parse_atom();
    if (!atom.has_value()) return std::nullopt;
    if (eof()) return atom;
    const char op = peek();
    if (op == '*') {
      ++pos_;
      const int split = add_state(State::Kind::kSplit);
      states_[static_cast<std::size_t>(split)].next = atom->start;
      patch(*atom, split);
      Frag f;
      f.start = split;
      f.dangling = {{split, 1}};
      return f;
    }
    if (op == '+') {
      ++pos_;
      const int split = add_state(State::Kind::kSplit);
      states_[static_cast<std::size_t>(split)].next = atom->start;
      patch(*atom, split);
      Frag f;
      f.start = atom->start;
      f.dangling = {{split, 1}};
      return f;
    }
    if (op == '?') {
      ++pos_;
      const int split = add_state(State::Kind::kSplit);
      states_[static_cast<std::size_t>(split)].next = atom->start;
      Frag f;
      f.start = split;
      f.dangling = std::move(atom->dangling);
      f.dangling.emplace_back(split, 1);
      return f;
    }
    return atom;
  }

  std::optional<Frag> parse_atom() {
    if (eof()) return std::nullopt;
    const char c = pattern_[pos_];
    if (c == '(') {
      ++pos_;
      auto inner = parse_alt();
      if (!inner.has_value() || eof() || peek() != ')') return std::nullopt;
      ++pos_;
      return inner;
    }
    if (c == '[') {
      return parse_class();
    }
    if (c == '*' || c == '+' || c == '?' || c == ')' || c == '|') {
      return std::nullopt;  // dangling operator
    }

    std::bitset<256> klass;
    if (c == '.') {
      klass.set();
      ++pos_;
    } else if (c == '\\') {
      ++pos_;
      if (eof()) return std::nullopt;
      klass.set(static_cast<unsigned char>(pattern_[pos_]));
      ++pos_;
    } else {
      klass.set(static_cast<unsigned char>(c));
      ++pos_;
    }
    const int s = add_state(State::Kind::kByte);
    states_[static_cast<std::size_t>(s)].klass = klass;
    Frag f;
    f.start = s;
    f.dangling = {{s, 0}};
    return f;
  }

  std::optional<Frag> parse_class() {
    ++pos_;  // '['
    std::bitset<256> klass;
    bool negate = false;
    if (!eof() && peek() == '^') {
      negate = true;
      ++pos_;
    }
    bool any = false;
    while (!eof() && peek() != ']') {
      unsigned char lo = static_cast<unsigned char>(pattern_[pos_++]);
      if (lo == '\\') {
        if (eof()) return std::nullopt;
        lo = static_cast<unsigned char>(pattern_[pos_++]);
      }
      unsigned char hi = lo;
      if (!eof() && peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        pos_ += 1;  // '-'
        hi = static_cast<unsigned char>(pattern_[pos_++]);
      }
      if (hi < lo) return std::nullopt;
      for (unsigned v = lo; v <= hi; ++v) klass.set(v);
      any = true;
    }
    if (eof() || !any) return std::nullopt;
    ++pos_;  // ']'
    if (negate) klass.flip();
    const int s = add_state(State::Kind::kByte);
    states_[static_cast<std::size_t>(s)].klass = klass;
    Frag f;
    f.start = s;
    f.dangling = {{s, 0}};
    return f;
  }

  std::string_view pattern_;
  std::vector<State>& states_;
  std::size_t pos_ = 0;
};

std::optional<Regex> Regex::compile(std::string_view pattern) {
  Regex re;
  re.pattern_ = std::string(pattern);
  Compiler compiler(pattern, re.states_);
  const auto start = compiler.compile();
  if (!start.has_value()) return std::nullopt;
  re.start_ = *start;
  return re;
}

void Regex::add_closure(int state, std::vector<bool>& set,
                        std::vector<int>& list) const {
  if (state < 0 || set[static_cast<std::size_t>(state)]) return;
  set[static_cast<std::size_t>(state)] = true;
  const State& s = states_[static_cast<std::size_t>(state)];
  if (s.kind == State::Kind::kSplit) {
    add_closure(s.next, set, list);
    add_closure(s.next2, set, list);
  } else {
    list.push_back(state);
  }
}

bool Regex::search(std::span<const std::uint8_t> input) const {
  std::vector<bool> in_current(states_.size(), false);
  std::vector<int> current;
  add_closure(start_, in_current, current);

  auto accepts = [&](const std::vector<int>& list) {
    for (int s : list) {
      if (states_[static_cast<std::size_t>(s)].kind ==
          State::Kind::kAccept) {
        return true;
      }
    }
    return false;
  };

  if (accepts(current)) return true;

  for (std::size_t i = 0; i < input.size(); ++i) {
    std::vector<bool> in_next(states_.size(), false);
    std::vector<int> next;
    for (int s : current) {
      const State& st = states_[static_cast<std::size_t>(s)];
      if (st.kind == State::Kind::kByte && st.klass[input[i]]) {
        add_closure(st.next, in_next, next);
      }
    }
    // Unanchored search: also allow a fresh match starting at i+1.
    add_closure(start_, in_next, next);
    current = std::move(next);
    in_current = std::move(in_next);
    if (accepts(current)) return true;
  }
  return false;
}

}  // namespace panic::engines
