#include "engines/kvs_cache_engine.h"

#include <cassert>

#include "net/packet.h"
#include "telemetry/telemetry.h"

namespace panic::engines {

KvsCacheEngine::KvsCacheEngine(std::string name, noc::NetworkInterface* ni,
                               const EngineConfig& config,
                               const KvsCacheConfig& kvs, HostMemory* host)
    : Engine(std::move(name), ni, config), kvs_(kvs), host_(host) {
  assert(host_ != nullptr);
}

Cycles KvsCacheEngine::service_time(const Message& msg) const {
  (void)msg;
  return kvs_.lookup_cycles;
}

void KvsCacheEngine::touch(std::uint64_t key, Entry& entry) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void KvsCacheEngine::insert(std::uint64_t key, Entry entry) {
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.erase(it->second.lru_it);
    index_.erase(it);
  }
  while (index_.size() >= kvs_.capacity_entries && !lru_.empty()) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  index_.emplace(key, std::move(entry));
}

bool KvsCacheEngine::handle_get(Message& msg, Cycle now) {
  const auto it = index_.find(msg.meta.kvs_key);
  if (it == index_.end()) {
    ++misses_;
    return true;  // continue along the chain toward the host (DMA engine)
  }
  ++hits_;
  Entry& entry = it->second;
  touch(msg.meta.kvs_key, entry);

  if (kvs_.mode == KvsCacheMode::kValue) {
    // Generate the reply right here from cached value bytes.
    const auto parsed = parse_frame(msg.data);
    if (!parsed.has_value() || !parsed->kvs.has_value()) {
      ++misses_;
      --hits_;
      return true;
    }
    auto reply = make_message(MessageKind::kPacket);
    reply->data = frames::kvs_get_reply(
        parsed->ipv4->dst, parsed->ipv4->src, parsed->kvs->tenant,
        parsed->kvs->key, parsed->kvs->request_id, entry.value);
    reply->tenant = msg.tenant;
    reply->slack = msg.slack;
    reply->created_at = msg.created_at;
    reply->nic_ingress_at = msg.nic_ingress_at;
    reply->ingress_port = msg.ingress_port;
    reply->egress_port = msg.ingress_port;  // back out the same port
    if (kvs_.reply_route.valid()) {
      emit(std::move(reply), kvs_.reply_route, now);
    }
    return false;  // request consumed
  }

  // kLocation: hand off to the RDMA engine with the host location.
  msg.dma_addr = entry.host_addr;
  msg.dma_bytes = entry.length;
  assert(kvs_.rdma_engine.valid());
  // Consume the hop naming this engine before redirecting.
  if (const auto hop = msg.chain.current();
      hop.has_value() && hop->engine == id()) {
    msg.chain.advance();
  }
  // Re-own the in-service message through the factory so the allocation
  // goes through the pool; move-assignment keeps the original id (the
  // redirect is logically the same message, and its trace stays stitched).
  auto owned = make_message(msg.kind);
  *owned = std::move(msg);
  emit(std::move(owned), kvs_.rdma_engine, now);
  return false;
}

bool KvsCacheEngine::handle_set(Message& msg, Cycle now) {
  (void)now;
  ++sets_;
  const auto parsed = parse_frame(msg.data);
  if (!parsed.has_value() || !parsed->kvs.has_value()) return true;
  const auto value = parsed->payload(msg.data);

  Entry entry;
  entry.length = static_cast<std::uint32_t>(value.size());
  if (kvs_.mode == KvsCacheMode::kValue) {
    entry.value.assign(value.begin(), value.end());
  } else {
    // Write the value to host memory and cache its location — the paper's
    // "append the value in the SET to a log" plus a location-cache update.
    entry.host_addr = host_->allocate(entry.length);
    host_->write(entry.host_addr, value);
  }
  insert(parsed->kvs->key, std::move(entry));
  return true;  // the SET continues to the host along its chain
}

bool KvsCacheEngine::process(Message& msg, Cycle now) {
  if (msg.kind != MessageKind::kPacket || !msg.meta_valid ||
      !msg.meta.is_kvs) {
    return true;  // non-KVS traffic passes through
  }
  switch (static_cast<KvsOp>(msg.meta.kvs_op)) {
    case KvsOp::kGet:
      return handle_get(msg, now);
    case KvsOp::kSet:
      return handle_set(msg, now);
    default:
      return true;
  }
}

void KvsCacheEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "hits", &hits_);
  m.expose_counter(metric_prefix() + "misses", &misses_);
  m.expose_counter(metric_prefix() + "sets", &sets_);
  m.expose_gauge(metric_prefix() + "entries",
                 [this] { return static_cast<double>(index_.size()); });
}

}  // namespace panic::engines
