#include "engines/pifo_tree.h"

#include <algorithm>
#include <stdexcept>

namespace panic::engines {

PifoTree::PifoTree(const SchedSpec& root, const SchedSpec& leaf,
                   std::size_t leaf_capacity)
    : root_spec_(root),
      leaf_spec_(leaf),
      leaf_capacity_(leaf_capacity ? leaf_capacity : 1) {
  std::string error;
  root_program_ = RankProgram::compile_spec(root_spec_, &error);
  if (root_program_ == nullptr) {
    throw std::runtime_error("pifo tree root rank program: " + error);
  }
}

SchedulerQueue& PifoTree::leaf_for(std::uint16_t klass) {
  auto it = leaves_.find(klass);
  if (it == leaves_.end()) {
    it = leaves_
             .emplace(klass, std::make_unique<SchedulerQueue>(
                                 leaf_spec_, leaf_capacity_))
             .first;
  }
  return *it->second;
}

bool PifoTree::try_enqueue(MessagePtr msg, Cycle now, std::uint16_t klass) {
  // Rank the CLASS first: the root program sees the message with tenant
  // rebound to the class id, so per-class weights resolve naturally.
  RankInputs in;
  in.slack = msg->slack;
  in.tenant = klass;
  in.flow = msg->flow.value;
  in.bytes = msg->wire_size();
  in.now = now;
  in.created = msg->created_at;
  in.seq = next_seq_;
  in.vtime = root_vtime_;
  in.weight = root_spec_.weight_for(klass);
  in.kind = static_cast<std::uint64_t>(msg->kind);
  const std::uint64_t rank =
      root_program_->evaluate(in, root_state_, root_scratch_);

  SchedulerQueue& leaf = leaf_for(klass);
  if (!leaf.try_enqueue(std::move(msg), now)) {
    // Leaf tail-dropped: no root entry, no root state advance.
    ++dropped_;
    return false;
  }
  if (root_program_->stateful()) {
    root_program_->commit(root_state_, root_scratch_,
                          root_program_->state_key(in));
  }
  root_.push_back(RootItem{rank, next_seq_++, klass});
  std::push_heap(root_.begin(), root_.end(), RootOrder{});
  return true;
}

MessagePtr PifoTree::dequeue(Cycle now) {
  if (root_.empty()) return nullptr;
  std::pop_heap(root_.begin(), root_.end(), RootOrder{});
  const RootItem item = root_.back();
  root_.pop_back();
  root_vtime_ = std::max(root_vtime_, item.rank);
  // Every root entry matches one admitted leaf message, so the leaf is
  // never empty here.
  return leaf_for(item.klass).dequeue(now);
}

}  // namespace panic::engines
