// Synthetic host-memory model behind the DMA engine.
//
// The paper's NIC talks to real host DRAM over PCIe; we substitute a
// deterministic store: writes are retained, reads return written bytes or
// a deterministic pseudo-random fill for untouched addresses (so DMA reads
// always produce stable, checkable data without pre-populating gigabytes).
#pragma once

#include <array>
#include <bitset>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

namespace panic::engines {

class HostMemory {
 public:
  void write(std::uint64_t addr, std::span<const std::uint8_t> data);
  std::vector<std::uint8_t> read(std::uint64_t addr, std::uint32_t len) const;
  /// Reads into an existing buffer (resized to `len`), reusing its
  /// capacity — the DMA engine fills recycled completion messages with it.
  void read_into(std::uint64_t addr, std::uint32_t len,
                 std::vector<std::uint8_t>& out) const;

  /// Simple bump allocator for tests/engines that need fresh regions.
  std::uint64_t allocate(std::uint32_t len);

  std::size_t bytes_written() const { return bytes_written_; }

 private:
  static constexpr std::size_t kPageShift = 12;
  static constexpr std::size_t kPageSize = 1u << kPageShift;

  /// Sparse page: raw bytes plus a written-bitmap so untouched bytes keep
  /// reading as the deterministic fill (same observable behaviour as the
  /// old byte-granular map, without a hash node per written byte).
  struct Page {
    std::array<std::uint8_t, kPageSize> data;
    std::bitset<kPageSize> written;
  };

  static std::uint8_t deterministic_byte(std::uint64_t addr);

  std::unordered_map<std::uint64_t, std::unique_ptr<Page>> store_;  // by page
  std::uint64_t next_alloc_ = 0x100000;  // start at 1 MiB
  std::size_t bytes_written_ = 0;
};

}  // namespace panic::engines
