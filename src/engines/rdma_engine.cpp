#include "engines/rdma_engine.h"

#include "net/packet.h"
#include "telemetry/telemetry.h"

namespace panic::engines {

RdmaEngine::RdmaEngine(std::string name, noc::NetworkInterface* ni,
                       const EngineConfig& config, const RdmaConfig& rdma)
    : Engine(std::move(name), ni, config), rdma_(rdma) {}

Cycles RdmaEngine::service_time(const Message& msg) const {
  return msg.kind == MessageKind::kDmaCompletion ? rdma_.response_cycles
                                                 : rdma_.request_cycles;
}

bool RdmaEngine::process(Message& msg, Cycle now) {
  if (msg.kind == MessageKind::kPacket && msg.meta_valid && msg.meta.is_kvs &&
      msg.dma_bytes > 0) {
    // A location-cache hit: issue the DMA read for the value.
    if (pending_.size() >= rdma_.max_outstanding) {
      ++overflow_;
      return false;  // drop under overload; client retries
    }
    const auto parsed = parse_frame(msg.data);
    if (!parsed.has_value() || !parsed->kvs.has_value() ||
        !parsed->ipv4.has_value()) {
      return false;
    }
    PendingOp op;
    op.tenant = parsed->kvs->tenant;
    op.key = parsed->kvs->key;
    op.request_id = parsed->kvs->request_id;
    op.src_ip = parsed->ipv4->src.value();
    op.dst_ip = parsed->ipv4->dst.value();
    op.slack = msg.slack;
    op.created_at = msg.created_at;
    op.nic_ingress_at = msg.nic_ingress_at;
    op.ingress_port = msg.ingress_port;
    pending_[op.request_id] = op;

    auto read = make_message(MessageKind::kDmaRead);
    read->dma_addr = msg.dma_addr;
    read->dma_bytes = msg.dma_bytes;
    read->reply_to = id();
    read->tenant = msg.tenant;
    read->slack = msg.slack;
    read->created_at = msg.created_at;
    read->nic_ingress_at = msg.nic_ingress_at;
    read->ingress_port = msg.ingress_port;
    read->meta = msg.meta;  // carries kvs_request_id for the completion
    read->meta_valid = true;
    ++issued_;
    emit(std::move(read), rdma_.dma_engine, now);
    return false;
  }

  if (msg.kind == MessageKind::kDmaCompletion && msg.meta_valid &&
      msg.meta.is_kvs) {
    const auto it = pending_.find(msg.meta.kvs_request_id);
    if (it == pending_.end()) return false;  // stale/duplicate completion
    const PendingOp op = it->second;
    pending_.erase(it);

    auto reply = make_message(MessageKind::kPacket);
    reply->data = frames::kvs_get_reply(Ipv4Addr{op.dst_ip},
                                        Ipv4Addr{op.src_ip}, op.tenant,
                                        op.key, op.request_id, msg.data);
    reply->tenant = TenantId{op.tenant};
    reply->slack = op.slack;
    reply->created_at = op.created_at;
    reply->nic_ingress_at = op.nic_ingress_at;
    reply->ingress_port = op.ingress_port;
    reply->egress_port = op.ingress_port;
    ++replies_;
    // Inject the reply toward the wire via the default route (the RMT
    // pipeline deparses and switches it to the Ethernet port, §3.2).
    const auto route = lookup_table().route(*reply);
    if (route.has_value() && *route != id()) {
      emit(std::move(reply), *route, now);
    }
    return false;
  }

  return true;  // unrelated traffic continues along its chain
}

void RdmaEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "requests_issued", &issued_);
  m.expose_counter(metric_prefix() + "replies_generated", &replies_);
  m.expose_counter(metric_prefix() + "overflow_drops", &overflow_);
}

}  // namespace panic::engines
