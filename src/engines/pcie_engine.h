// PCIe engine: the host-facing tile.
//
// RX direction (§3.2): terminates interrupt messages from the DMA engine
// and applies interrupt coalescing ("a PCIe engine that may generate an
// interrupt depending on the interrupt coalescing state").
//
// TX direction (§3.1: "reading transmit descriptors ... are all treated
// as packets"): the host driver rings a doorbell; the PCIe engine fetches
// the 16-byte TX descriptor through the DMA engine, then the frame bytes,
// wraps them as a from-host packet and injects it toward the RMT pipeline,
// which routes it (checksum offload, optional WAN encryption) to its
// egress port.
#pragma once

#include <functional>
#include <unordered_map>

#include "engines/engine.h"
#include "engines/tx_descriptor.h"

namespace panic::engines {

struct PcieConfig {
  Cycles coalesce_window = 500;  ///< 1 µs @ 500 MHz
  /// Ethernet port tiles, indexed by TxDescriptor::port.
  std::vector<EngineId> eth_ports;
};

class PcieEngine : public Engine {
 public:
  PcieEngine(std::string name, noc::NetworkInterface* ni,
             const EngineConfig& config, const PcieConfig& pcie);

  /// Host-side MMIO: the driver rings the TX doorbell for the descriptor
  /// at `descriptor_addr`.  (Arrives instantly — MMIO writes are posted.)
  void ring_tx_doorbell(std::uint64_t descriptor_addr, Cycle now);

  /// Invoked when the frame for a posted descriptor has been fetched and
  /// launched toward the wire — the driver's TX completion signal (the
  /// HostDriver uses it to cancel its timeout/retry timer).
  using TxLaunchCallback = std::function<void(std::uint64_t desc_addr,
                                              Cycle now)>;
  void set_tx_launch_callback(TxLaunchCallback cb) {
    tx_launched_cb_ = std::move(cb);
  }

  std::uint64_t interrupts_delivered() const { return delivered_; }
  std::uint64_t interrupts_coalesced() const { return coalesced_; }
  std::uint64_t tx_packets_launched() const { return tx_launched_; }
  std::uint64_t tx_descriptor_errors() const { return tx_errors_; }

  void register_telemetry(telemetry::Telemetry& t) override;

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  /// Markers carried in meta.cache_hint through the DMA round trips.
  static constexpr std::uint8_t kFetchDescriptor = 1;
  static constexpr std::uint8_t kFetchFrame = 2;

  void handle_doorbell(Message& msg, Cycle now);
  void handle_completion(Message& msg, Cycle now);

  PcieConfig pcie_;
  Cycle window_expires_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t tx_launched_ = 0;
  std::uint64_t tx_errors_ = 0;

  /// In-flight TX frames by frame address; the descriptor address rides
  /// along so the launch can be reported back to the host driver.
  struct PendingTx {
    TxDescriptor desc;
    std::uint64_t desc_addr = 0;
  };
  std::unordered_map<std::uint64_t, PendingTx> pending_tx_;
  TxLaunchCallback tx_launched_cb_;
};

}  // namespace panic::engines
