#include "engines/host_driver.h"

#include <cassert>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "sim/simulator.h"

namespace panic::engines {

Cycles backoff_delay(const HostDriverConfig& config, std::uint64_t stream,
                     int attempt) {
  // Exponential base, capped: tx_timeout << (attempt-1), saturating the
  // shift so a pathological max_retries can't overflow.
  const int shift = attempt > 1 ? attempt - 1 : 0;
  Cycles base = config.tx_timeout;
  if (shift >= 63 || (base << shift) >> shift != base ||
      (base << shift) > config.max_backoff) {
    base = config.max_backoff;
  } else {
    base <<= shift;
  }
  if (config.jitter <= 0.0) return base > 0 ? base : 1;

  // One fresh draw per (stream, attempt): splitmix-style mixing keeps
  // adjacent descriptors/attempts decorrelated, derive_seed folds in the
  // global sim seed.
  std::uint64_t mixed = config.seed;
  mixed ^= stream * 0x9E3779B97F4A7C15ull;
  mixed ^= static_cast<std::uint64_t>(attempt) * 0xBF58476D1CE4E5B9ull;
  Rng rng(derive_seed(mixed));
  const double factor =
      rng.uniform_real(1.0 - config.jitter, 1.0 + config.jitter);
  const auto delayed =
      static_cast<Cycles>(static_cast<double>(base) * factor);
  return delayed > 0 ? delayed : 1;
}

HostDriver::HostDriver(HostMemory* host, PcieEngine* pcie,
                       HostDriverConfig config)
    : host_(host), pcie_(pcie), config_(config) {
  assert(host_ != nullptr && pcie_ != nullptr);
}

void HostDriver::attach(Simulator& sim) {
  sim_ = &sim;
  pcie_->set_tx_launch_callback(
      [this](std::uint64_t desc_addr, Cycle /*now*/) {
        on_launched(desc_addr);
      });
  auto& m = sim.telemetry().metrics();
  m.expose_counter("host_driver.posted", &posted_);
  m.expose_counter("host_driver.completed", &completed_);
  m.expose_counter("host_driver.retries", &retries_);
  m.expose_counter("host_driver.failed", &failed_);
  m.expose_gauge("host_driver.pending",
                 [this] { return static_cast<double>(pending_.size()); });
}

std::uint64_t HostDriver::post_tx(std::span<const std::uint8_t> frame,
                                  std::uint16_t port, Cycle now,
                                  std::uint16_t tenant) {
  const auto frame_addr =
      host_->allocate(static_cast<std::uint32_t>(frame.size()));
  host_->write(frame_addr, frame);

  TxDescriptor desc;
  desc.frame_addr = frame_addr;
  desc.frame_len = static_cast<std::uint32_t>(frame.size());
  desc.port = port;
  desc.tenant = tenant;

  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  desc.serialize(w);
  const auto desc_addr = host_->allocate(TxDescriptor::kSize);
  host_->write(desc_addr, bytes);

  if (sim_ != nullptr) {
    pending_[desc_addr] = Pending{1};
    arm_timeout(desc_addr);
  }
  pcie_->ring_tx_doorbell(desc_addr, now);
  ++posted_;
  return desc_addr;
}

void HostDriver::on_launched(std::uint64_t desc_addr) {
  if (pending_.erase(desc_addr) != 0) ++completed_;
}

void HostDriver::arm_timeout(std::uint64_t desc_addr) {
  const int attempt = pending_[desc_addr].attempts;
  const Cycles delay = backoff_delay(config_, desc_addr, attempt);
  sim_->schedule_in(delay, [this, desc_addr, attempt] {
    const auto it = pending_.find(desc_addr);
    // Completed, or a newer attempt already re-armed its own timer.
    if (it == pending_.end() || it->second.attempts != attempt) return;
    if (it->second.attempts > config_.max_retries) {
      PANIC_WARN("host_driver",
                 "TX descriptor 0x%llx abandoned after %d attempts",
                 static_cast<unsigned long long>(desc_addr), attempt);
      pending_.erase(it);
      ++failed_;
      return;
    }
    ++it->second.attempts;
    ++retries_;
    PANIC_INFO("host_driver", "TX descriptor 0x%llx timed out, re-ringing",
               static_cast<unsigned long long>(desc_addr));
    arm_timeout(desc_addr);
    pcie_->ring_tx_doorbell(desc_addr, sim_->now());
  });
}

}  // namespace panic::engines
