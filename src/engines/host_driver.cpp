#include "engines/host_driver.h"

#include <cassert>
#include <vector>

namespace panic::engines {

HostDriver::HostDriver(HostMemory* host, PcieEngine* pcie)
    : host_(host), pcie_(pcie) {
  assert(host_ != nullptr && pcie_ != nullptr);
}

std::uint64_t HostDriver::post_tx(std::span<const std::uint8_t> frame,
                                  std::uint16_t port, Cycle now,
                                  std::uint16_t tenant) {
  const auto frame_addr =
      host_->allocate(static_cast<std::uint32_t>(frame.size()));
  host_->write(frame_addr, frame);

  TxDescriptor desc;
  desc.frame_addr = frame_addr;
  desc.frame_len = static_cast<std::uint32_t>(frame.size());
  desc.port = port;
  desc.tenant = tenant;

  std::vector<std::uint8_t> bytes;
  ByteWriter w(bytes);
  desc.serialize(w);
  const auto desc_addr = host_->allocate(TxDescriptor::kSize);
  host_->write(desc_addr, bytes);

  pcie_->ring_tx_doorbell(desc_addr, now);
  ++posted_;
  return desc_addr;
}

}  // namespace panic::engines
