// Byte-oriented LZ77 compressor/decompressor — the real transformation
// behind the compression offload engine.  Format (self-contained, not
// interoperable with any standard):
//
//   token := literal_run | match
//   literal_run := 0x00 len:u8 bytes[len]          (len >= 1)
//   match       := 0x01 dist:u16be len:u8          (len >= kMinMatch)
//
// Greedy matching against a 64 KiB sliding window with a 4-byte hash
// chain.  Round-trips losslessly for arbitrary input; compresses repetitive
// payloads well and expands incompressible ones by at most ~1/255 + 2.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace panic::engines {

inline constexpr std::size_t kLzMinMatch = 4;
inline constexpr std::size_t kLzMaxMatch = 255;
inline constexpr std::size_t kLzWindow = 65535;

std::vector<std::uint8_t> lz77_compress(std::span<const std::uint8_t> input);

/// Returns nullopt if the stream is malformed (truncated token, distance
/// beyond the produced output).
std::optional<std::vector<std::uint8_t>> lz77_decompress(
    std::span<const std::uint8_t> input);

}  // namespace panic::engines
