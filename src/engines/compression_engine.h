// Compression offload engine: LZ77-compresses (or decompresses) message
// payloads.  Another §2.3.3 example of an offload too heavy for an RMT
// stage — its service time is data-dependent and far above one cycle.
//
// For packets the innermost L4 payload is transformed and the frame is
// rebuilt with corrected lengths; for non-packet messages (e.g. kDmaWrite
// payloads being staged to host memory) the whole body is transformed.
// A one-byte mode marker prefixes compressed payloads so decompression can
// reject uncompressed input.
#pragma once

#include "engines/engine.h"
#include "engines/lz77.h"

namespace panic::engines {

enum class CompressionMode { kCompress, kDecompress };

struct CompressionConfig {
  CompressionMode mode = CompressionMode::kCompress;
  Cycles setup_cycles = 16;
  double cycles_per_byte = 0.5;  ///< 2 B/cycle match pipeline
};

class CompressionEngine : public Engine {
 public:
  CompressionEngine(std::string name, noc::NetworkInterface* ni,
                    const EngineConfig& config,
                    const CompressionConfig& compression);

  std::uint64_t processed_ok() const { return ok_; }
  std::uint64_t failed() const { return failed_; }
  /// Aggregate in/out byte counts (compression ratio = in/out).
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }

  void register_telemetry(telemetry::Telemetry& t) override;

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  bool transform_payload(Message& msg);

  CompressionConfig compression_;
  std::uint64_t ok_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t bytes_in_ = 0;
  std::uint64_t bytes_out_ = 0;
};

}  // namespace panic::engines
