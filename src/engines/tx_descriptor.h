// Transmit descriptor format shared by the host driver and the PCIe
// engine.  16 bytes in host memory: where the frame lives, how long it
// is, which port it leaves from, and the owning tenant.
#pragma once

#include <cstdint>
#include <optional>

#include "net/bytes.h"

namespace panic::engines {

struct TxDescriptor {
  static constexpr std::size_t kSize = 16;

  std::uint64_t frame_addr = 0;
  std::uint32_t frame_len = 0;
  std::uint16_t port = 0;    ///< Ethernet port index
  std::uint16_t tenant = 0;

  void serialize(ByteWriter& w) const {
    w.u64(frame_addr);
    w.u32(frame_len);
    w.u16(port);
    w.u16(tenant);
  }

  static std::optional<TxDescriptor> parse(ByteReader& r) {
    TxDescriptor d;
    d.frame_addr = r.u64();
    d.frame_len = r.u32();
    d.port = r.u16();
    d.tenant = r.u16();
    if (!r.ok()) return std::nullopt;
    return d;
  }
};

}  // namespace panic::engines
