// ChaCha20 stream cipher (RFC 8439) — the real transformation behind the
// IPSec offload engine.  The paper needs an offload with genuine variable,
// size-dependent compute that cannot run as an RMT action (§2.3.3 "it is
// not possible to perform IPSec offloading with an RMT pipeline"); a real
// cipher keeps that honest.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace panic::engines {

class ChaCha20 {
 public:
  static constexpr std::size_t kKeyBytes = 32;
  static constexpr std::size_t kNonceBytes = 12;
  static constexpr std::size_t kBlockBytes = 64;

  ChaCha20(std::span<const std::uint8_t> key,
           std::span<const std::uint8_t> nonce,
           std::uint32_t initial_counter = 0);

  /// Encrypts or decrypts (the operation is symmetric) `input` into a new
  /// buffer.
  std::vector<std::uint8_t> apply(std::span<const std::uint8_t> input);

  /// In-place variant.
  void apply_inplace(std::span<std::uint8_t> data);

  /// One keystream block for `counter` (exposed for tests against the
  /// RFC 8439 vectors).
  std::array<std::uint8_t, kBlockBytes> keystream_block(
      std::uint32_t counter) const;

 private:
  std::array<std::uint32_t, 16> state_;
  std::uint32_t counter_;
};

/// Poly1305-style 64-bit authentication tag (truncated, non-standard — we
/// only need integrity checking inside the simulation, not interop).
std::uint64_t auth_tag(std::span<const std::uint8_t> data,
                       std::span<const std::uint8_t> key);

}  // namespace panic::engines
