#include "engines/tso_engine.h"

#include <cmath>

#include "net/packet.h"
#include "telemetry/telemetry.h"

namespace panic::engines {

TsoEngine::TsoEngine(std::string name, noc::NetworkInterface* ni,
                     const EngineConfig& config, const TsoConfig& tso)
    : Engine(std::move(name), ni, config), tso_(tso) {}

std::vector<std::vector<std::uint8_t>> TsoEngine::segment_frame(
    std::span<const std::uint8_t> frame, std::uint32_t mss) {
  const auto parsed = parse_frame(frame);
  if (!parsed.has_value() || !parsed->tcp.has_value() ||
      !parsed->ipv4.has_value()) {
    return {};
  }
  const auto payload = parsed->payload(frame);
  if (payload.size() <= mss) return {};

  std::vector<std::vector<std::uint8_t>> segments;
  const std::uint8_t original_flags = parsed->tcp->flags;
  std::size_t offset = 0;
  std::uint16_t ip_id = parsed->ipv4->identification;
  while (offset < payload.size()) {
    const std::size_t take = std::min<std::size_t>(mss, payload.size() - offset);
    const bool last = offset + take >= payload.size();

    Ipv4Header ip = *parsed->ipv4;
    ip.identification = ip_id++;
    ip.total_length = static_cast<std::uint16_t>(
        Ipv4Header::kSize + TcpHeader::kSize + take);

    TcpHeader tcp = *parsed->tcp;
    tcp.seq = parsed->tcp->seq + static_cast<std::uint32_t>(offset);
    // PSH/FIN only on the final segment; SYN/RST would never be here on a
    // payload-bearing jumbo frame, but mask them off defensively too.
    tcp.flags = last ? original_flags
                     : static_cast<std::uint8_t>(
                           original_flags &
                           ~(TcpHeader::kPsh | TcpHeader::kFin));
    tcp.checksum = 0;  // filled by the checksum engine downstream

    std::vector<std::uint8_t> segment;
    segment.reserve(EthernetHeader::kSize + ip.total_length);
    ByteWriter w(segment);
    parsed->eth.serialize(w);
    ip.serialize(w);
    tcp.serialize(w);
    w.bytes(payload.subspan(offset, take));
    if (segment.size() < 64) segment.resize(64, 0);
    segments.push_back(std::move(segment));
    offset += take;
  }
  return segments;
}

Cycles TsoEngine::service_time(const Message& msg) const {
  return tso_.setup_cycles +
         static_cast<Cycles>(std::ceil(static_cast<double>(msg.data.size()) *
                                       tso_.cycles_per_byte));
}

bool TsoEngine::process(Message& msg, Cycle now) {
  if (msg.kind != MessageKind::kPacket) return true;
  auto segments = segment_frame(msg.data, tso_.mss);
  if (segments.empty()) {
    ++passthrough_;
    return true;  // small or non-TCP: continue unchanged
  }
  ++segmented_;

  // Consume the hop naming this engine, then clone the remaining chain
  // onto every segment.
  if (const auto hop = msg.chain.current();
      hop.has_value() && hop->engine == id()) {
    msg.chain.advance();
  }
  const auto next = lookup_table().route(msg);
  for (auto& bytes : segments) {
    auto segment = make_message(MessageKind::kPacket);
    segment->data = std::move(bytes);
    segment->chain = msg.chain;
    segment->slack = msg.slack;
    segment->tenant = msg.tenant;
    segment->flow = msg.flow;
    segment->from_host = msg.from_host;
    segment->egress_port = msg.egress_port;
    segment->ingress_port = msg.ingress_port;
    segment->created_at = msg.created_at;
    segment->nic_ingress_at = msg.nic_ingress_at;
    ++segments_;
    if (next.has_value() && *next != id()) {
      emit(std::move(segment), *next, now);
    }
  }
  return false;  // the jumbo frame is consumed
}

void TsoEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "frames_segmented", &segmented_);
  m.expose_counter(metric_prefix() + "segments_emitted", &segments_);
  m.expose_counter(metric_prefix() + "passed_through", &passthrough_);
}

}  // namespace panic::engines
