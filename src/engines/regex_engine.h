// Regex/DPI offload engine: scans packet payloads against a compiled
// pattern set.  Matching messages are marked (meta.cache_hint = 1 + index
// of the first matching pattern) or dropped, depending on policy — the
// building block for on-NIC intrusion detection.
#pragma once

#include <vector>

#include "engines/engine.h"
#include "engines/regex_nfa.h"

namespace panic::engines {

enum class RegexPolicy { kMark, kDropOnMatch };

struct RegexConfig {
  RegexPolicy policy = RegexPolicy::kMark;
  Cycles setup_cycles = 8;
  double cycles_per_byte = 1.0;  ///< NFA scan rate
};

class RegexEngine : public Engine {
 public:
  RegexEngine(std::string name, noc::NetworkInterface* ni,
              const EngineConfig& config, const RegexConfig& regex);

  /// Adds a pattern; returns false (and ignores it) on syntax error.
  bool add_pattern(std::string_view pattern);
  std::size_t num_patterns() const { return patterns_.size(); }

  std::uint64_t matched() const { return matched_; }
  std::uint64_t scanned() const { return scanned_; }
  std::uint64_t dropped_by_policy() const { return dropped_; }

  void register_telemetry(telemetry::Telemetry& t) override;

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  RegexConfig regex_;
  std::vector<Regex> patterns_;
  std::uint64_t matched_ = 0;
  std::uint64_t scanned_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace panic::engines
