#include "engines/regex_engine.h"

#include <cmath>

#include "net/packet.h"
#include "telemetry/telemetry.h"

namespace panic::engines {

RegexEngine::RegexEngine(std::string name, noc::NetworkInterface* ni,
                         const EngineConfig& config, const RegexConfig& regex)
    : Engine(std::move(name), ni, config), regex_(regex) {}

bool RegexEngine::add_pattern(std::string_view pattern) {
  auto compiled = Regex::compile(pattern);
  if (!compiled.has_value()) return false;
  patterns_.push_back(std::move(*compiled));
  return true;
}

Cycles RegexEngine::service_time(const Message& msg) const {
  return regex_.setup_cycles +
         static_cast<Cycles>(std::ceil(static_cast<double>(msg.data.size()) *
                                       regex_.cycles_per_byte));
}

bool RegexEngine::process(Message& msg, Cycle now) {
  (void)now;
  if (msg.kind != MessageKind::kPacket) return true;
  ++scanned_;

  std::span<const std::uint8_t> haystack = msg.data;
  if (const auto parsed = parse_frame(msg.data);
      parsed.has_value() && parsed->payload_size > 0) {
    haystack = parsed->payload(msg.data);
  }

  for (std::size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i].search(haystack)) {
      ++matched_;
      if (regex_.policy == RegexPolicy::kDropOnMatch) {
        ++dropped_;
        return false;
      }
      msg.meta.cache_hint = static_cast<std::uint8_t>(i + 1);
      break;
    }
  }
  return true;
}

void RegexEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "matched", &matched_);
  m.expose_counter(metric_prefix() + "scanned", &scanned_);
  m.expose_counter(metric_prefix() + "dropped_by_policy", &dropped_);
}

}  // namespace panic::engines
