// Compiled rank programs for the PIFO scheduler (§3.1.3).
//
// Programmable Packet Scheduling (Sivaraman et al., PAPERS.md) shows a
// single primitive — a push-in-first-out queue ordered by a small "rank"
// computation run at enqueue — expresses WFQ, STFQ, EDF, strict priority
// and deadline scheduling.  This module compiles such rank computations
// from text, using the shared src/lang expression language (the same one
// p4lite's set_expr action speaks).
//
// A rank program is a list of `var = expression` statements, one per line
// (or ';'-separated), executed top to bottom at every enqueue:
//
//     # two-tenant weighted fair queueing
//     flow.start  = max(flow.finish, vtime)
//     flow.finish = flow.start + (bytes * 1024) / weight
//     rank        = flow.start
//
// Assignable variables:
//   rank        the message's rank; LOWER dequeues FIRST.  Every program
//               must assign it at least once (its value after the last
//               statement wins).
//   flow.<x>    per-flow state, persisted across enqueues of the same
//               flow key (see `key` below), initially 0.
//   queue.<x>   per-queue state, persisted across all enqueues.
// Read-only inputs (all uint64):
//   slack       chain-header slack at this engine
//   tenant      scheduling tenant id
//   flow        flow id
//   bytes       wire size of the message (payload + chain header)
//   now         current cycle
//   created     cycle the workload created the message
//   seq         per-queue arrival sequence number (0, 1, ...)
//   vtime       the queue's virtual time: the max rank dequeued so far
//   weight      this tenant's configured weight (default 1; `weight` lines
//               in the scenario / SchedSpec::weights)
//   kind        MessageKind as an integer
// An optional first statement `key tenant` (default) or `key flow` picks
// which id partitions the flow.* state.
//
// Per-flow/queue state written by a statement is only COMMITTED when the
// message is actually admitted; a message dropped at a full queue does
// not advance virtual finish times.
//
// Compile errors are "line N: reason" with N 1-based into the program
// text.  Evaluation is total (see lang/expr.h), so every well-formed
// program — including fuzz-generated ones — is safe on every input.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/units.h"
#include "lang/expr.h"

namespace panic::engines {

/// Legacy two-policy knob, kept for existing call sites; SchedSpec widens
/// it to the full rank-program space.
enum class SchedPolicy : std::uint8_t {
  kSlackPriority,  ///< PANIC: dequeue lowest slack first
  kFifo,           ///< baseline: arrival order
};

enum class SchedKind : std::uint8_t {
  kSlack,   ///< rank = slack (the default; bit-identical to the legacy
            ///< slack-priority queue)
  kFifo,    ///< rank = 0 (arrival order; the baseline)
  kWfq,     ///< weighted fair queueing (start-time, per-tenant weights)
  kStfq,    ///< start-time fair queueing (WFQ with unit weights, raw bytes)
  kEdf,     ///< earliest deadline first: rank = created + slack
  kPrio,    ///< strict priority: rank = tenant (lower tenant id wins)
  kCustom,  ///< a `sched pifo rank=<<END ... END` program
};

const char* to_string(SchedKind kind);
std::optional<SchedKind> sched_kind_from_name(std::string_view name);

/// The canonical rank-program source for a built-in policy.
std::string builtin_rank_source(SchedKind kind);

/// Full scheduling specification: a policy kind, its rank program (for
/// kCustom) and per-tenant WFQ weights.  Implicitly convertible from the
/// legacy SchedPolicy so existing configs/tests compile unchanged.
struct SchedSpec {
  SchedKind kind = SchedKind::kSlack;
  std::string rank_source;  ///< kCustom only; others use builtin source
  /// tenant -> weight pairs, kept sorted by tenant; absent tenants weigh 1.
  std::vector<std::pair<std::uint16_t, std::uint32_t>> weights;

  SchedSpec() = default;
  SchedSpec(SchedKind k) : kind(k) {}  // NOLINT(runtime/explicit)
  SchedSpec(SchedPolicy p)             // NOLINT(runtime/explicit)
      : kind(p == SchedPolicy::kFifo ? SchedKind::kFifo : SchedKind::kSlack) {
  }

  /// The rank-program text this spec compiles to.
  std::string source() const {
    return kind == SchedKind::kCustom ? rank_source
                                      : builtin_rank_source(kind);
  }
  /// Legacy kinds keep the pre-PIFO fast paths, telemetry surface and
  /// DropPolicy::kEvictLoosest slack comparison bit-identical.
  bool legacy() const {
    return kind == SchedKind::kSlack || kind == SchedKind::kFifo;
  }
  std::uint32_t weight_for(std::uint16_t tenant) const;
  void set_weight(std::uint16_t tenant, std::uint32_t weight);

  friend bool operator==(const SchedSpec& a, const SchedSpec& b) {
    return a.kind == b.kind && a.rank_source == b.rank_source &&
           a.weights == b.weights;
  }
  friend bool operator!=(const SchedSpec& a, const SchedSpec& b) {
    return !(a == b);
  }
};

/// The read-only inputs one rank evaluation sees (header comment order).
struct RankInputs {
  std::uint64_t slack = 0;
  std::uint64_t tenant = 0;
  std::uint64_t flow = 0;
  std::uint64_t bytes = 0;
  std::uint64_t now = 0;
  std::uint64_t created = 0;
  std::uint64_t seq = 0;
  std::uint64_t vtime = 0;
  std::uint64_t weight = 1;
  std::uint64_t kind = 0;
};

/// Persistent state one queue keeps for one rank program.
struct RankState {
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> flows;
  std::vector<std::uint64_t> queue;
};

class RankProgram {
 public:
  /// Compiles `source`; on failure returns nullopt and sets *error to
  /// "line N: reason".
  static std::optional<RankProgram> compile(std::string_view source,
                                            std::string* error);
  /// Compiles the program a SchedSpec names.  Built-in sources always
  /// compile (pinned by tests/sched/rank_program_test.cpp).
  static std::shared_ptr<const RankProgram> compile_spec(
      const SchedSpec& spec, std::string* error);

  /// True when the program keys flow.* state by flow id (`key flow`);
  /// default is tenant.
  bool keyed_by_flow() const { return keyed_by_flow_; }
  std::uint64_t state_key(const RankInputs& in) const {
    return keyed_by_flow_ ? in.flow : in.tenant;
  }
  bool stateful() const { return flow_slots_ > 0 || queue_slots_ > 0; }

  /// Fast-path introspection: exactly `rank = slack` / `rank = <const>`.
  bool trivial_slack() const { return trivial_slack_; }
  bool trivial_const(std::uint64_t* value) const {
    if (!trivial_const_) return false;
    if (value != nullptr) *value = const_rank_;
    return true;
  }

  /// Runs the program against `in` and `state` WITHOUT mutating state;
  /// all variable values land in `scratch` (resized as needed).  Returns
  /// the rank.  Call commit() with the same scratch to persist the
  /// flow./queue. writes once the message is admitted.
  std::uint64_t evaluate(const RankInputs& in, const RankState& state,
                         std::vector<std::uint64_t>& scratch) const;
  void commit(RankState& state, const std::vector<std::uint64_t>& scratch,
              std::uint64_t key) const;

  /// One-shot convenience for reference models: evaluate + commit.
  std::uint64_t rank_and_commit(const RankInputs& in, RankState& state,
                                std::vector<std::uint64_t>& scratch) const {
    const std::uint64_t r = evaluate(in, state, scratch);
    commit(state, scratch, state_key(in));
    return r;
  }

  const std::string& source() const { return source_; }

 private:
  struct Statement {
    std::uint32_t dst = 0;  // slot index
    lang::Expr expr;
    int line = 0;
  };
  /// One flow./queue. state variable, at slot kStateBase + its index in
  /// state_vars_; `ordinal` is its position within the per-flow (or
  /// per-queue) state vector.
  struct StateVar {
    bool is_flow = true;
    std::uint32_t ordinal = 0;
  };

  // Slot layout: [0..9] read-only inputs, [10] rank, then state vars in
  // first-mention order.
  static constexpr std::uint32_t kInputCount = 10;
  static constexpr std::uint32_t kRankSlot = kInputCount;
  static constexpr std::uint32_t kStateBase = kRankSlot + 1;
  std::uint32_t total_slots() const {
    return kStateBase + static_cast<std::uint32_t>(state_vars_.size());
  }

  std::string source_;
  std::vector<Statement> statements_;
  std::vector<StateVar> state_vars_;
  std::uint32_t flow_slots_ = 0;
  std::uint32_t queue_slots_ = 0;
  bool keyed_by_flow_ = false;
  bool trivial_slack_ = false;
  bool trivial_const_ = false;
  std::uint64_t const_rank_ = 0;
};

}  // namespace panic::engines
