#include "engines/host_memory.h"

namespace panic::engines {

void HostMemory::write(std::uint64_t addr,
                       std::span<const std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    store_[addr + i] = data[i];
  }
  bytes_written_ += data.size();
}

std::uint8_t HostMemory::deterministic_byte(std::uint64_t addr) {
  std::uint64_t z = addr + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::uint8_t>(z ^ (z >> 31));
}

std::vector<std::uint8_t> HostMemory::read(std::uint64_t addr,
                                           std::uint32_t len) const {
  std::vector<std::uint8_t> out(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const auto it = store_.find(addr + i);
    out[i] = it != store_.end() ? it->second : deterministic_byte(addr + i);
  }
  return out;
}

std::uint64_t HostMemory::allocate(std::uint32_t len) {
  const std::uint64_t addr = next_alloc_;
  next_alloc_ += (len + 63) & ~63ull;  // cache-line align
  return addr;
}

}  // namespace panic::engines
