#include "engines/host_memory.h"

#include <algorithm>

namespace panic::engines {

void HostMemory::write(std::uint64_t addr,
                       std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  while (i < data.size()) {
    const std::uint64_t a = addr + i;
    auto& page = store_[a >> kPageShift];
    if (page == nullptr) page = std::make_unique<Page>();
    const std::size_t off = a & (kPageSize - 1);
    const std::size_t n = std::min(data.size() - i, kPageSize - off);
    std::copy_n(data.data() + i, n, page->data.data() + off);
    for (std::size_t j = 0; j < n; ++j) page->written.set(off + j);
    i += n;
  }
  bytes_written_ += data.size();
}

std::uint8_t HostMemory::deterministic_byte(std::uint64_t addr) {
  std::uint64_t z = addr + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return static_cast<std::uint8_t>(z ^ (z >> 31));
}

std::vector<std::uint8_t> HostMemory::read(std::uint64_t addr,
                                           std::uint32_t len) const {
  std::vector<std::uint8_t> out;
  read_into(addr, len, out);
  return out;
}

void HostMemory::read_into(std::uint64_t addr, std::uint32_t len,
                           std::vector<std::uint8_t>& out) const {
  out.resize(len);
  std::size_t i = 0;
  while (i < len) {
    const std::uint64_t a = addr + i;
    const std::size_t off = a & (kPageSize - 1);
    const std::size_t n =
        std::min<std::size_t>(len - i, kPageSize - off);
    const auto it = store_.find(a >> kPageShift);
    if (it == store_.end()) {
      for (std::size_t j = 0; j < n; ++j) out[i + j] = deterministic_byte(a + j);
    } else {
      const Page& p = *it->second;
      for (std::size_t j = 0; j < n; ++j) {
        out[i + j] =
            p.written.test(off + j) ? p.data[off + j] : deterministic_byte(a + j);
      }
    }
    i += n;
  }
}

std::uint64_t HostMemory::allocate(std::uint32_t len) {
  const std::uint64_t addr = next_alloc_;
  next_alloc_ += (len + 63) & ~63ull;  // cache-line align
  return addr;
}

}  // namespace panic::engines
