// IPSec offload engine: real ESP encapsulation with ChaCha20 encryption
// and an integrity tag.  This is the paper's canonical example of an
// offload that cannot live in an RMT pipeline (§2.3.3) and whose chain
// cannot be fully precomputed (§3.1.2: encrypted messages need a second
// RMT pass after decryption).
//
// Encapsulation format (synthetic but complete):
//   outer = Eth | IPv4(proto=ESP) | ESP(spi, seq) | ct | tag64
//   ct    = ChaCha20(inner-IPv4-packet-bytes), keyed per SPI
//
// Decrypt: verify the tag, strip the outer headers, rebuild the clear
// frame, and send it back through the heavyweight RMT pipeline (the
// engine's default route), producing the 2-pass behaviour measured in E6.
#pragma once

#include <array>
#include <unordered_map>

#include "engines/chacha20.h"
#include "engines/engine.h"

namespace panic::engines {

enum class IpsecMode { kDecrypt, kEncrypt };

struct IpsecConfig {
  IpsecMode mode = IpsecMode::kDecrypt;
  Cycles setup_cycles = 24;       ///< per-packet key schedule / SA lookup
  double cycles_per_byte = 0.25;  ///< 4 B/cycle crypto datapath
  std::uint32_t default_spi = 0x1001;
};

class IpsecEngine : public Engine {
 public:
  IpsecEngine(std::string name, noc::NetworkInterface* ni,
              const EngineConfig& config, const IpsecConfig& ipsec);

  /// Installs a security association (key derived from the SPI if absent).
  void install_sa(std::uint32_t spi);

  std::uint64_t decrypted() const { return decrypted_; }
  std::uint64_t encrypted() const { return encrypted_; }
  std::uint64_t auth_failures() const { return auth_failures_; }

  void register_telemetry(telemetry::Telemetry& t) override;

  /// Builds the key for an SPI (deterministic; shared by both endpoints).
  static std::array<std::uint8_t, ChaCha20::kKeyBytes> key_for_spi(
      std::uint32_t spi);

  /// Encrypts `inner_frame` into a full ESP frame (static helper used by
  /// workload generators to fabricate WAN traffic).
  static std::vector<std::uint8_t> encapsulate(
      std::span<const std::uint8_t> inner_frame, std::uint32_t spi,
      std::uint32_t seq);

  /// Decrypts an ESP frame; returns the inner frame or nullopt on auth
  /// failure / malformed input.
  static std::optional<std::vector<std::uint8_t>> decapsulate(
      std::span<const std::uint8_t> esp_frame);

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  IpsecConfig ipsec_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t decrypted_ = 0;
  std::uint64_t encrypted_ = 0;
  std::uint64_t auth_failures_ = 0;
};

}  // namespace panic::engines
