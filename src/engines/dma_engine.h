// DMA engine: the tile that moves data between the NIC and host memory.
// In PANIC the DMA engine is an ordinary engine on the mesh (§3.1.1 "this
// also includes existing NIC components that would not normally be thought
// of as switch ports, including the on-NIC DMA and PCIe engines").
//
// Handled message kinds:
//   kPacket        — host-bound packet: written to the host RX ring, then
//                    an interrupt message is emitted toward the PCIe tile.
//   kDmaRead       — returns a kDmaCompletion carrying the bytes to
//                    msg->reply_to.
//   kDmaWrite      — writes msg->data at msg->dma_addr; a zero-length
//                    kDmaCompletion acks to reply_to if set.
//   kDescriptorFetch — modelled as a fixed-size read of a TX descriptor.
//
// Service time models PCIe/DRAM: fixed base latency + per-byte cost +
// exponential contention jitter — §3.2: "Due to possible memory contention
// from applications on the main CPU, the DMA engine has variable
// performance and may become a bottleneck."
#pragma once

#include <unordered_map>

#include "common/rng.h"
#include "common/stats.h"
#include "engines/engine.h"
#include "engines/host_memory.h"

namespace panic::engines {

struct DmaConfig {
  Cycles base_latency = 75;        ///< ~150 ns @ 500 MHz PCIe round trip
  double bytes_per_cycle = 32.0;   ///< ~128 Gbps payload bandwidth @500MHz
  double contention_mean = 0.0;    ///< mean extra cycles (exponential); 0=off
  std::uint64_t seed = 0x00D7A00D;
};

class DmaEngine : public Engine {
 public:
  DmaEngine(std::string name, noc::NetworkInterface* ni,
            const EngineConfig& config, const DmaConfig& dma,
            HostMemory* host);

  /// Host-bound packets delivered (terminal RX path).
  std::uint64_t packets_to_host() const { return packets_to_host_; }
  std::uint64_t reads_served() const { return reads_served_; }
  std::uint64_t writes_served() const { return writes_served_; }
  /// End-to-end NIC latency (ingress -> host delivery) of RX packets.
  const Histogram& host_delivery_latency() const { return delivery_hist_; }
  /// Same, split per tenant (for the isolation experiments).
  const Histogram& host_delivery_latency(TenantId tenant) {
    return per_tenant_hist_[tenant.value];
  }

  /// Adds host-delivery counters + latency histograms (per-tenant splits
  /// register lazily as "engine.<name>.host_latency.tenant.<id>").
  void register_telemetry(telemetry::Telemetry& t) override;

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  DmaConfig dma_;
  HostMemory* host_;
  mutable Rng rng_;

  std::uint64_t packets_to_host_ = 0;
  std::uint64_t reads_served_ = 0;
  std::uint64_t writes_served_ = 0;
  std::uint64_t next_ring_addr_ = 0x4000000;  // synthetic RX ring base
  Histogram delivery_hist_;
  std::unordered_map<std::uint16_t, Histogram> per_tenant_hist_;
};

}  // namespace panic::engines
