// Base class for PANIC offload engines (Figure 3a).
//
// Every engine tile owns: a network interface onto the mesh router, the
// local scheduling queue (the logical scheduler's slice at this engine),
// and a lightweight lookup table (the logical switch's slice).  Derived
// classes implement the offload itself: a service-time model plus the
// actual data transformation.
//
// Per-cycle behaviour (tick):
//   1. drain arriving messages from the NI into the scheduling queue
//      (adopting the slack carried by the message's current chain hop);
//   2. if idle, start servicing the highest-priority queued message;
//   3. when the in-service message's time elapses, run `process()` and
//      forward the result(s) along the chain / lookup table;
//   4. drain the output staging buffer into the NI (backpressure-safe:
//      an engine whose NI is busy simply holds its output, it never drops
//      — drops only happen at the scheduler queue).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/units.h"
#include "engines/lookup_table.h"
#include "fault/steering.h"
#include "engines/sched_queue.h"
#include "noc/network_interface.h"
#include "sim/component.h"
#include "sim/timed_queue.h"

namespace panic::engines {

struct EngineConfig {
  SchedSpec sched_policy = SchedKind::kSlack;
  DropPolicy drop_policy = DropPolicy::kDropArrival;
  std::size_t queue_capacity = 64;   ///< scheduler queue depth (messages)
  std::size_t output_staging = 16;   ///< completed messages awaiting inject

  /// Degraded-mode admission when steering resolution fails (a kill left
  /// the equivalence group empty): drop immediately, or park up to
  /// `no_route_depth` messages until a revive/spare re-opens a route.
  fault::NoRoutePolicy no_route = fault::NoRoutePolicy::kDrop;
  std::size_t no_route_depth = 64;
};

class Engine : public Component {
 public:
  Engine(std::string name, noc::NetworkInterface* ni,
         const EngineConfig& config);

  EngineId id() const { return ni_->tile(); }

  LocalLookupTable& lookup_table() { return lookup_; }
  SchedulerQueue& queue() { return queue_; }
  const SchedulerQueue& queue() const { return queue_; }

  void tick(Cycle now) final;

  /// Quiescence: an engine sleeps until its in-service message completes
  /// once its staging buffer is drained, and goes fully quiescent when the
  /// scheduler queue and in-flight work are empty.  Arrivals wake it via
  /// the NI client hook; emit() self-wakes.
  Cycle next_wake(Cycle now) const final;

  /// Publishes processed/busy_cycles/service histogram and the scheduler
  /// queue's counters under "engine.<name>.*".  Subclasses with extra
  /// counters override AND call this first.
  void register_telemetry(telemetry::Telemetry& t) override;

  // --- Fault-injection hooks (armed by fault::FaultInjector). ---

  /// Permanent death: discards queued, in-service and staged work with
  /// fate kFaulted, then discards every later arrival.  Recovery — routing
  /// new work around this tile — is the SteeringDirectory's job.
  void fault_kill(Cycle now);

  /// Freezes the engine (no draining, no service) until now + duration.
  void fault_stall(Cycle now, Cycles duration);

  /// Multiplies service times started before cycle `until` by `factor`.
  void fault_degrade(double factor, Cycle until);

  /// Flips one payload byte of each arriving message with probability
  /// `probability` until cycle `until`, drawing from a dedicated stream.
  void fault_corrupt(double probability, Cycle until, std::uint64_t seed);

  /// Recovery: a killed engine accepts work again from `now` on, with all
  /// fault modifiers (stall/degrade/corrupt) cleared — a warm restart.
  /// Steering-level reintegration (new chains routing back here) is the
  /// FaultInjector's job via SteeringDirectory::mark_alive.
  void fault_revive(Cycle now);

  bool faulted_dead() const { return dead_; }

  /// Outbound routing consults `steering` (when set) to re-steer messages
  /// headed to a dead engine; unresolvable hops die with fate kFaulted.
  void set_steering(const fault::SteeringDirectory* steering) {
    steering_ = steering;
  }

  // --- Watchdog probes (fault/watchdog.h). ---

  /// Monotone forward-progress counter: moves at every service start and
  /// completion, frozen exactly when the engine is wedged.
  std::uint64_t progress() const { return processed_ + busy_cycles_; }

  /// True when the engine holds undone work (a busy probe; an idle engine
  /// making no progress is healthy).
  bool has_pending_work() const {
    return in_service_ != nullptr || !queue_.empty() || !out_.empty() ||
           !parked_.empty();
  }

 protected:
  /// Cycles this engine needs to process `msg` (>= 1).  Called once when
  /// service starts.
  virtual Cycles service_time(const Message& msg) const = 0;

  /// The offload's work.  May mutate `msg` in place.  Return true to
  /// forward `msg` onward (the common case); return false if the engine
  /// consumed it (e.g. it emitted replacement messages via `emit`, or the
  /// message terminates here).
  virtual bool process(Message& msg, Cycle now) = 0;

  /// Queues an additional outbound message to an explicit destination
  /// (DMA requests, generated replies, interrupts).  The message leaves
  /// through the same NI as forwarded traffic.
  void emit(MessagePtr msg, EngineId dst, Cycle now);

  /// Forwards `msg` along its chain: consumes the current hop (which
  /// names this engine), then sends to the next hop or the lookup-table
  /// route.  If no route exists the message terminates here.
  void forward_along_chain(MessagePtr msg, Cycle now);

  /// True if the output staging buffer has room for `n` more messages —
  /// engines that emit multiple messages per input should check before
  /// starting service.
  bool can_stage(std::size_t n = 1) const {
    return out_.size() + n <= config_.output_staging;
  }

  /// Root of this engine's metric names: "engine.<name>.".
  std::string metric_prefix() const { return "engine." + name() + "."; }

 private:
  void drain_arrivals(Cycle now);
  void drain_output(Cycle now);
  /// Re-forwards parked (no-live-route) messages when the steering
  /// generation has moved since they were parked.
  void retry_parked(Cycle now);
  /// Dead-engine behaviour: destroy all held work + arrivals (fate
  /// kFaulted, counted in faulted_discards_).
  void discard_all(Cycle now);
  void maybe_corrupt(Message& msg, Cycle now);

  noc::NetworkInterface* ni_;
  EngineConfig config_;
  LocalLookupTable lookup_;
  SchedulerQueue queue_;

  // In-service message (at most one; engines are single-server).
  MessagePtr in_service_;
  Cycle service_done_ = 0;
  Cycles service_cycles_ = 0;  ///< duration of the current service window

  struct Outbound {
    MessagePtr msg;
    EngineId dst;
  };
  /// Output staging.  Logically bounded by `config_.output_staging` via
  /// can_stage(), but emit() is also an external entry point (a MAC's
  /// deliver_rx), so the queue itself is unbounded and its high watermark
  /// is published as growth telemetry.
  TimedQueue<Outbound> out_;

  std::uint64_t processed_ = 0;
  std::uint64_t busy_cycles_ = 0;
  Histogram service_hist_;

  // --- Fault state (all inert until a FaultInjector arms a plan). ---
  bool dead_ = false;
  Cycle stalled_until_ = 0;
  double degrade_factor_ = 1.0;
  Cycle degrade_until_ = 0;
  double corrupt_p_ = 0.0;
  Cycle corrupt_until_ = 0;
  Rng corrupt_rng_;
  const fault::SteeringDirectory* steering_ = nullptr;

  std::uint64_t faulted_discards_ = 0;  ///< messages destroyed by faults here
  std::uint64_t corrupted_ = 0;         ///< payloads flipped on arrival
  std::uint64_t resteered_ = 0;         ///< sends redirected around dead tiles

  /// Degraded-mode admission (no_route = kBackpressure): messages whose
  /// next hop has no live equivalent wait here, bounded by
  /// `config_.no_route_depth`, and are re-forwarded when the steering
  /// generation moves (a revive/spare re-opened a route).
  std::deque<MessagePtr> parked_;
  std::uint64_t parked_gen_ = 0;        ///< steering generation at last park
  std::size_t parked_watermark_ = 0;
  std::uint64_t no_route_parked_ = 0;   ///< park events (incl. re-parks)
  std::uint64_t no_route_shed_ = 0;     ///< overflow sheds (fate kShed)
};

}  // namespace panic::engines
