#include "engines/ethernet_port.h"

#include <cmath>

#include "common/log.h"
#include "telemetry/telemetry.h"

namespace panic::engines {

void EthernetPortEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  const std::string p = metric_prefix();
  m.expose_gauge(p + "rx_packets",
                 [this] { return static_cast<double>(rx_meter_.packets()); });
  m.expose_gauge(p + "rx_bytes",
                 [this] { return static_cast<double>(rx_meter_.bytes()); });
  m.expose_gauge(p + "tx_packets",
                 [this] { return static_cast<double>(tx_meter_.packets()); });
  m.expose_gauge(p + "tx_bytes",
                 [this] { return static_cast<double>(tx_meter_.bytes()); });
  m.expose_histogram(p + "tx_latency", &tx_latency_);
}

EthernetPortEngine::EthernetPortEngine(std::string name,
                                       noc::NetworkInterface* ni,
                                       const EngineConfig& config,
                                       DataRate line_rate, Frequency clock)
    : Engine(std::move(name), ni, config),
      line_rate_(line_rate),
      clock_(clock) {}

void EthernetPortEngine::deliver_rx(std::vector<std::uint8_t> frame_bytes,
                                    Cycle now, Cycle created_at,
                                    TenantId tenant) {
  auto msg = make_message(MessageKind::kPacket);
  msg->data = std::move(frame_bytes);
  deliver_rx(std::move(msg), now, created_at, tenant);
}

void EthernetPortEngine::deliver_rx(MessagePtr msg, Cycle now,
                                    Cycle created_at, TenantId tenant) {
  rx_meter_.add_packet(msg->data.size());
  msg->kind = MessageKind::kPacket;
  msg->created_at = created_at ? created_at : now;
  msg->nic_ingress_at = now;
  msg->tenant = tenant;
  msg->ingress_port = id();
  const auto next = lookup_table().route(*msg);
  if (next.has_value()) {
    emit(std::move(msg), *next, now);
  } else {
    // No route configured: the frame is dropped at the MAC (misconfigured
    // NIC); RX meter still counts it so the loss is visible.
    PANIC_DEBUG("eth", "%s: RX frame dropped, no route configured",
                name().c_str());
    trace(telemetry::TraceEventKind::kDrop, now, msg->id);
    msg->set_fate(MessageFate::kDropped);
  }
}

Cycles EthernetPortEngine::service_time(const Message& msg) const {
  // Wire serialization time at line rate (+ preamble/IFG overhead).
  const double wire_bits =
      static_cast<double>(msg.data.size() +
                          (kMinWireSizeBytes - kMinFrameBytes)) *
      8.0;
  const double cycles = wire_bits / line_rate_.bits_per_cycle(clock_);
  return static_cast<Cycles>(std::ceil(cycles));
}

bool EthernetPortEngine::process(Message& msg, Cycle now) {
  // A message reaching an Ethernet tile is a TX.
  tx_meter_.add_packet(msg.data.size());
  trace(telemetry::TraceEventKind::kTxWire, now, msg.id,
        static_cast<std::uint32_t>(msg.data.size()));
  if (now >= msg.nic_ingress_at) {
    tx_latency_.record(now - msg.nic_ingress_at);
  }
  if (tx_sink_) tx_sink_(msg, now);
  msg.set_fate(MessageFate::kDelivered);  // left the NIC on the wire
  return false;
}

}  // namespace panic::engines
