// A configurable pass-through engine with fixed + per-byte service time.
// Stands in for "some offload" in topology/scheduling experiments (HOL
// blocking, chain scaling) where only the service-time behaviour matters,
// and doubles as the simplest example of implementing a custom engine.
#pragma once

#include <cmath>

#include "engines/engine.h"

namespace panic::engines {

class DelayEngine : public Engine {
 public:
  DelayEngine(std::string name, noc::NetworkInterface* ni,
              const EngineConfig& config, Cycles fixed_cycles,
              double cycles_per_byte = 0.0)
      : Engine(std::move(name), ni, config),
        fixed_(fixed_cycles),
        per_byte_(cycles_per_byte) {}

 protected:
  Cycles service_time(const Message& msg) const override {
    return fixed_ + static_cast<Cycles>(std::ceil(
                        static_cast<double>(msg.data.size()) * per_byte_));
  }

  bool process(Message& msg, Cycle now) override {
    (void)msg;
    (void)now;
    return true;
  }

 private:
  Cycles fixed_;
  double per_byte_;
};

}  // namespace panic::engines
