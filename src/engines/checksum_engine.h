// Checksum offload engine: fills in the UDP or TCP checksum (with the IPv4
// pseudo-header) of packets passing through — the classic fixed-function
// inline offload (§2.3.1 mentions NICs with "fixed function offloads for
// TCP checksums").
#pragma once

#include "engines/engine.h"

namespace panic::engines {

struct ChecksumConfig {
  Cycles setup_cycles = 2;
  double cycles_per_byte = 0.0625;  ///< 16 B/cycle — near line rate
};

class ChecksumEngine : public Engine {
 public:
  ChecksumEngine(std::string name, noc::NetworkInterface* ni,
                 const EngineConfig& config, const ChecksumConfig& checksum);

  std::uint64_t checksummed() const { return done_; }
  std::uint64_t skipped() const { return skipped_; }

  void register_telemetry(telemetry::Telemetry& t) override;

  /// Computes the L4 checksum of `frame` in place.  Returns false if the
  /// frame carries no UDP/TCP.  Exposed for tests and for the software
  /// verification path.
  static bool fill_l4_checksum(std::vector<std::uint8_t>& frame);

  /// Verifies the L4 checksum; true if valid (or checksum==0 for UDP).
  static bool verify_l4_checksum(std::span<const std::uint8_t> frame);

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  ChecksumConfig checksum_;
  std::uint64_t done_ = 0;
  std::uint64_t skipped_ = 0;
};

}  // namespace panic::engines
