// TCP segmentation offload engine (the "TCP 1/2" tiles of Figure 3c;
// §2.1 lists TCP offload engines among the classic infrastructure
// offloads).
//
// The host posts one jumbo TCP frame; this engine slices its payload into
// MSS-sized segments, each with correctly advanced sequence numbers,
// per-segment IPv4 total_length/identification, and PSH/FIN flags only on
// the final segment.  Every segment inherits the remainder of the
// original message's chain (typically [checksum, egress port]), so
// segments flow through the same offloads the packet would have.
#pragma once

#include "engines/engine.h"

namespace panic::engines {

struct TsoConfig {
  std::uint32_t mss = 1460;      ///< max TCP payload per segment
  Cycles setup_cycles = 16;
  double cycles_per_byte = 0.0625;  ///< 16 B/cycle DMA-style copy engine
};

class TsoEngine : public Engine {
 public:
  TsoEngine(std::string name, noc::NetworkInterface* ni,
            const EngineConfig& config, const TsoConfig& tso);

  std::uint64_t frames_segmented() const { return segmented_; }
  std::uint64_t segments_emitted() const { return segments_; }
  std::uint64_t passed_through() const { return passthrough_; }

  void register_telemetry(telemetry::Telemetry& t) override;

  /// Pure segmentation logic (exposed for tests): splits `frame` into
  /// MSS-sized TCP segments.  Returns an empty vector if the frame is not
  /// TCP or already fits one segment.
  static std::vector<std::vector<std::uint8_t>> segment_frame(
      std::span<const std::uint8_t> frame, std::uint32_t mss);

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  TsoConfig tso_;
  std::uint64_t segmented_ = 0;
  std::uint64_t segments_ = 0;
  std::uint64_t passthrough_ = 0;
};

}  // namespace panic::engines
