#include "engines/sched_queue.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "common/log.h"

namespace panic::engines {

namespace {
bool g_audit = false;
int g_selftest_bug = -1;     // -1 = unresolved (consult the environment)
int g_selftest_tiebug = -1;  // -1 = unresolved (consult the environment)

int resolve_env_flag(const char* name) {
  const char* env = std::getenv(name);
  return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
}
}  // namespace

void SchedulerQueue::set_audit(bool on) { g_audit = on; }
bool SchedulerQueue::audit_enabled() { return g_audit; }

void SchedulerQueue::set_selftest_bug(bool on) { g_selftest_bug = on ? 1 : 0; }

bool SchedulerQueue::selftest_bug() {
  if (g_selftest_bug < 0) {
    g_selftest_bug = resolve_env_flag("PANIC_FUZZ_SELFTEST");
  }
  return g_selftest_bug == 1;
}

void SchedulerQueue::set_selftest_tiebug(bool on) {
  g_selftest_tiebug = on ? 1 : 0;
}

bool SchedulerQueue::selftest_tiebug() {
  if (g_selftest_tiebug < 0) {
    g_selftest_tiebug = resolve_env_flag("PANIC_FUZZ_TIE_SELFTEST");
  }
  return g_selftest_tiebug == 1;
}

SchedulerQueue::SchedulerQueue(const SchedSpec& spec, std::size_t capacity,
                               DropPolicy drop_policy)
    : spec_(spec),
      capacity_(capacity ? capacity : 1),
      drop_policy_(drop_policy) {
  std::string error;
  program_ = RankProgram::compile_spec(spec_, &error);
  if (program_ == nullptr) {
    // Scenario parsing validates rank programs up front; reaching this
    // means a caller built a bad SchedSpec in code.
    throw std::runtime_error("sched rank program: " + error);
  }
  // Legacy kinds pin the pre-PIFO fast paths outright; other programs
  // earn one when they compile to a single trivial statement.
  if (spec_.kind == SchedKind::kSlack || program_->trivial_slack()) {
    fast_ = FastPath::kSlackField;
  } else if (program_->trivial_const(&const_rank_)) {
    fast_ = FastPath::kConst;
  } else {
    fast_ = FastPath::kProgram;
  }
  // The heap never exceeds the drop bound, so one up-front reservation
  // keeps enqueue/dequeue allocation-free for the queue's lifetime (the
  // default slack path never touches scratch_ or the state maps).
  items_.reserve(capacity_);
}

RankInputs SchedulerQueue::inputs_for(const Message& msg, Cycle now,
                                      std::uint64_t vtime) const {
  RankInputs in;
  in.slack = msg.slack;
  in.tenant = msg.tenant.value;
  in.flow = msg.flow.value;
  in.bytes = msg.wire_size();
  in.now = now;
  in.created = msg.created_at;
  in.seq = next_seq_;
  in.vtime = vtime;
  in.weight = spec_.weight_for(msg.tenant.value);
  in.kind = static_cast<std::uint64_t>(msg.kind);
  return in;
}

std::uint64_t SchedulerQueue::compute_rank(const Message& msg, Cycle now) {
  switch (fast_) {
    case FastPath::kSlackField:
      return msg.slack;
    case FastPath::kConst:
      return const_rank_;
    case FastPath::kProgram:
      break;
  }
  ++rank_evals_;
  return program_->evaluate(inputs_for(msg, now, vtime_), state_, scratch_);
}

bool SchedulerQueue::try_enqueue(MessagePtr msg, Cycle now) {
  const Order order{selftest_tiebug()};
  const std::uint64_t rank = compute_rank(*msg, now);
  if (full() && drop_policy_ == DropPolicy::kEvictLoosest) {
    // Find the loosest (largest-rank, then youngest) queued message; if
    // it is looser than the arrival, evict it to make room.  Linear scan:
    // the heap only exposes the tightest element.  Legacy kinds compare
    // raw slack here (the pre-PIFO behavior, preserved bit-for-bit);
    // everything else compares ranks.
    std::size_t loosest = items_.size();
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (loosest == items_.size() || order(items_[i], items_[loosest])) {
        loosest = i;
      }
    }
    const bool evict =
        loosest < items_.size() &&
        (spec_.legacy() ? items_[loosest].msg->slack > msg->slack
                        : items_[loosest].rank > rank);
    if (evict) {
      trace(telemetry::TraceEventKind::kQueueDrop, now,
            *items_[loosest].msg);
      items_[loosest].msg->set_fate(MessageFate::kDropped);
      shadow_erase(items_[loosest].seq);
      items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(loosest));
      std::make_heap(items_.begin(), items_.end(), order);
      ++dropped_;
    }
  }
  if (full()) {
    trace(telemetry::TraceEventKind::kQueueDrop, now, *msg);
    msg->set_fate(MessageFate::kDropped);
    ++dropped_;
    PANIC_TRACE("sched", "queue full, dropping message %llu",
                static_cast<unsigned long long>(msg->id.value));
    // Dropped at admission: the rank program's pending state writes are
    // discarded — virtual finish times only advance for admitted traffic.
    return false;  // msg destroyed: the logical scheduler drops it
  }
  trace(telemetry::TraceEventKind::kEnqueue, now, *msg);
  if (g_audit) shadow_enqueue(*msg, now);
  if (fast_ == FastPath::kProgram && program_->stateful()) {
    program_->commit(state_, scratch_,
                     program_->state_key(inputs_for(*msg, now, vtime_)));
  }
  items_.push_back(Item{std::move(msg), rank, next_seq_++, now});
  std::push_heap(items_.begin(), items_.end(), order);
  ++enqueued_;
  max_depth_ = std::max(max_depth_, items_.size());
  return true;
}

std::vector<MessagePtr> SchedulerQueue::evict_all() {
  std::vector<MessagePtr> out;
  out.reserve(items_.size());
  for (Item& item : items_) out.push_back(std::move(item.msg));
  items_.clear();
  shadow_.clear();
  return out;
}

MessagePtr SchedulerQueue::dequeue(Cycle now) {
  if (items_.empty()) return nullptr;
  const Order order{selftest_tiebug()};
  std::pop_heap(items_.begin(), items_.end(), order);
  Item item = std::move(items_.back());
  items_.pop_back();
  if (selftest_bug() && !items_.empty()) {
    // Planted off-by-one (see header): swap the true winner back into the
    // heap and hand out the second-best instead.
    std::pop_heap(items_.begin(), items_.end(), order);
    std::swap(item, items_.back());
    std::push_heap(items_.begin(), items_.end(), order);
  }
  if (g_audit) {
    // The dequeued message must be the (rank, seq) minimum of everything
    // left behind.  This re-derives the total order explicitly instead
    // of calling Order, so a bug planted INSIDE the comparator (the tie
    // bug) cannot hide from its own audit.
    for (const Item& rest : items_) {
      if (item.rank > rest.rank ||
          (item.rank == rest.rank && item.seq > rest.seq)) {
        ++audit_violations_;
        PANIC_WARN("sched",
                   "audit: dequeued msg %llu (rank=%llu seq=%llu) after "
                   "higher-priority msg %llu (rank=%llu seq=%llu)",
                   static_cast<unsigned long long>(item.msg->id.value),
                   static_cast<unsigned long long>(item.rank),
                   static_cast<unsigned long long>(item.seq),
                   static_cast<unsigned long long>(rest.msg->id.value),
                   static_cast<unsigned long long>(rest.rank),
                   static_cast<unsigned long long>(rest.seq));
        break;
      }
    }
    shadow_check_dequeue(item);
  }
  vtime_ = std::max(vtime_, item.rank);
  ++dequeued_;
  total_wait_ += now >= item.enqueued_at ? now - item.enqueued_at : 0;
  trace(telemetry::TraceEventKind::kDequeue, now, *item.msg);
  return std::move(item.msg);
}

void SchedulerQueue::shadow_enqueue(const Message& msg, Cycle now) {
  // Independent reference evaluation: same program text, interpreted
  // against the shadow's own state and virtual time — so a divergence in
  // the production path's fast paths or state handling shows up as a
  // rank mismatch at dequeue.
  const std::uint64_t ref_rank = program_->evaluate(
      inputs_for(msg, now, shadow_vtime_), shadow_state_, shadow_scratch_);
  if (program_->stateful()) {
    program_->commit(shadow_state_, shadow_scratch_,
                     program_->state_key(inputs_for(msg, now,
                                                    shadow_vtime_)));
  }
  shadow_.push_back(ShadowItem{ref_rank, next_seq_});
}

void SchedulerQueue::shadow_erase(std::uint64_t seq) {
  for (std::size_t i = 0; i < shadow_.size(); ++i) {
    if (shadow_[i].seq == seq) {
      shadow_.erase(shadow_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

void SchedulerQueue::shadow_check_dequeue(const Item& item) {
  std::size_t found = shadow_.size();
  std::size_t best = shadow_.size();
  for (std::size_t i = 0; i < shadow_.size(); ++i) {
    if (shadow_[i].seq == item.seq) found = i;
    if (best == shadow_.size() || shadow_[i].rank < shadow_[best].rank ||
        (shadow_[i].rank == shadow_[best].rank &&
         shadow_[i].seq < shadow_[best].seq)) {
      best = i;
    }
  }
  if (found == shadow_.size()) {
    // The audit was armed mid-life of this queue; the shadow never saw
    // this message, so its view is not comparable.  Start over.
    shadow_.clear();
    return;
  }
  // Only judge when the shadow mirrors the queue exactly (it held the
  // dequeued item plus everything still queued).
  if (shadow_.size() == items_.size() + 1 && best != found) {
    ++audit_violations_;
    PANIC_WARN("sched",
               "audit: reference rank program expected seq %llu "
               "(rank=%llu), queue dequeued seq %llu (rank=%llu)",
               static_cast<unsigned long long>(shadow_[best].seq),
               static_cast<unsigned long long>(shadow_[best].rank),
               static_cast<unsigned long long>(item.seq),
               static_cast<unsigned long long>(item.rank));
  }
  shadow_vtime_ = std::max(shadow_vtime_, shadow_[found].rank);
  shadow_.erase(shadow_.begin() + static_cast<std::ptrdiff_t>(found));
}

void SchedulerQueue::register_metrics(telemetry::MetricsRegistry& m,
                                      const std::string& prefix) {
  m.expose_counter(prefix + ".enqueued", &enqueued_);
  m.expose_counter(prefix + ".dequeued", &dequeued_);
  m.expose_counter(prefix + ".dropped", &dropped_);
  m.expose_counter(prefix + ".wait_cycles", &total_wait_);
  m.expose_counter(prefix + ".max_depth", &max_depth_);
  m.expose_counter(prefix + ".audit_violations", &audit_violations_);
  m.expose_gauge(prefix + ".depth",
                 [this] { return static_cast<double>(items_.size()); });
  if (!spec_.legacy()) {
    // The sched.pifo.* family — registered only for programmable kinds so
    // `sched slack` / `sched fifo` snapshots stay bit-identical to the
    // pre-PIFO queue (same rule as the rmt.cache.* counters).
    m.expose_counter(prefix + ".pifo.rank_evals", &rank_evals_);
    m.expose_gauge(prefix + ".pifo.vtime",
                   [this] { return static_cast<double>(vtime_); });
    m.expose_gauge(prefix + ".pifo.flows", [this] {
      return static_cast<double>(state_.flows.size());
    });
  }
}

std::uint32_t SchedulerQueue::head_slack() const {
  return items_.empty() ? 0 : items_.front().msg->slack;
}

std::uint64_t SchedulerQueue::head_rank() const {
  return items_.empty() ? 0 : items_.front().rank;
}

}  // namespace panic::engines
