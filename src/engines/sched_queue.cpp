#include "engines/sched_queue.h"

#include <algorithm>
#include <cstdlib>

#include "common/log.h"

namespace panic::engines {

namespace {
bool g_audit = false;
int g_selftest_bug = -1;  // -1 = unresolved (consult the environment)
}  // namespace

void SchedulerQueue::set_audit(bool on) { g_audit = on; }
bool SchedulerQueue::audit_enabled() { return g_audit; }

void SchedulerQueue::set_selftest_bug(bool on) { g_selftest_bug = on ? 1 : 0; }

bool SchedulerQueue::selftest_bug() {
  if (g_selftest_bug < 0) {
    const char* env = std::getenv("PANIC_FUZZ_SELFTEST");
    g_selftest_bug =
        (env != nullptr && env[0] != '\0' && env[0] != '0') ? 1 : 0;
  }
  return g_selftest_bug == 1;
}

SchedulerQueue::SchedulerQueue(SchedPolicy policy, std::size_t capacity,
                               DropPolicy drop_policy)
    : policy_(policy),
      capacity_(capacity ? capacity : 1),
      drop_policy_(drop_policy) {
  // The heap never exceeds the drop bound, so one up-front reservation
  // keeps enqueue/dequeue allocation-free for the queue's lifetime.
  items_.reserve(capacity_);
}

bool SchedulerQueue::try_enqueue(MessagePtr msg, Cycle now) {
  if (full() && drop_policy_ == DropPolicy::kEvictLoosest) {
    // Find the loosest (largest-slack, then youngest) queued message; if
    // it is looser than the arrival, evict it to make room.  Linear scan:
    // the heap only exposes the tightest element.
    std::size_t loosest = items_.size();
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (loosest == items_.size() ||
          Order{policy_}(items_[i], items_[loosest])) {
        loosest = i;
      }
    }
    if (loosest < items_.size() &&
        items_[loosest].msg->slack > msg->slack) {
      trace(telemetry::TraceEventKind::kQueueDrop, now,
            *items_[loosest].msg);
      items_[loosest].msg->set_fate(MessageFate::kDropped);
      items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(loosest));
      std::make_heap(items_.begin(), items_.end(), Order{policy_});
      ++dropped_;
    }
  }
  if (full()) {
    trace(telemetry::TraceEventKind::kQueueDrop, now, *msg);
    msg->set_fate(MessageFate::kDropped);
    ++dropped_;
    PANIC_TRACE("sched", "queue full, dropping message %llu",
                static_cast<unsigned long long>(msg->id.value));
    return false;  // msg destroyed: the logical scheduler drops it
  }
  trace(telemetry::TraceEventKind::kEnqueue, now, *msg);
  items_.push_back(Item{std::move(msg), next_seq_++, now});
  std::push_heap(items_.begin(), items_.end(), Order{policy_});
  ++enqueued_;
  max_depth_ = std::max(max_depth_, items_.size());
  return true;
}

std::vector<MessagePtr> SchedulerQueue::evict_all() {
  std::vector<MessagePtr> out;
  out.reserve(items_.size());
  for (Item& item : items_) out.push_back(std::move(item.msg));
  items_.clear();
  return out;
}

MessagePtr SchedulerQueue::dequeue(Cycle now) {
  if (items_.empty()) return nullptr;
  std::pop_heap(items_.begin(), items_.end(), Order{policy_});
  Item item = std::move(items_.back());
  items_.pop_back();
  if (selftest_bug() && !items_.empty()) {
    // Planted off-by-one (see header): swap the true winner back into the
    // heap and hand out the second-best instead.
    std::pop_heap(items_.begin(), items_.end(), Order{policy_});
    std::swap(item, items_.back());
    std::push_heap(items_.begin(), items_.end(), Order{policy_});
  }
  if (g_audit) {
    // The dequeued message must not be lower priority than anything left
    // behind: that would break slack monotonicity (kSlackPriority) or
    // arrival order (kFifo / slack ties).
    for (const Item& rest : items_) {
      if (Order{policy_}(item, rest)) {
        ++audit_violations_;
        PANIC_WARN("sched",
                   "audit: dequeued msg %llu (slack=%u seq=%llu) after "
                   "higher-priority msg %llu (slack=%u seq=%llu)",
                   static_cast<unsigned long long>(item.msg->id.value),
                   item.msg->slack,
                   static_cast<unsigned long long>(item.seq),
                   static_cast<unsigned long long>(rest.msg->id.value),
                   rest.msg->slack,
                   static_cast<unsigned long long>(rest.seq));
        break;
      }
    }
  }
  ++dequeued_;
  total_wait_ += now >= item.enqueued_at ? now - item.enqueued_at : 0;
  trace(telemetry::TraceEventKind::kDequeue, now, *item.msg);
  return std::move(item.msg);
}

void SchedulerQueue::register_metrics(telemetry::MetricsRegistry& m,
                                      const std::string& prefix) {
  m.expose_counter(prefix + ".enqueued", &enqueued_);
  m.expose_counter(prefix + ".dequeued", &dequeued_);
  m.expose_counter(prefix + ".dropped", &dropped_);
  m.expose_counter(prefix + ".wait_cycles", &total_wait_);
  m.expose_counter(prefix + ".max_depth", &max_depth_);
  m.expose_counter(prefix + ".audit_violations", &audit_violations_);
  m.expose_gauge(prefix + ".depth",
                 [this] { return static_cast<double>(items_.size()); });
}

std::uint32_t SchedulerQueue::head_slack() const {
  return items_.empty() ? 0 : items_.front().msg->slack;
}

}  // namespace panic::engines
