#include "engines/rank_program.h"

#include <algorithm>

namespace panic::engines {

const char* to_string(SchedKind kind) {
  switch (kind) {
    case SchedKind::kSlack: return "slack";
    case SchedKind::kFifo: return "fifo";
    case SchedKind::kWfq: return "wfq";
    case SchedKind::kStfq: return "stfq";
    case SchedKind::kEdf: return "edf";
    case SchedKind::kPrio: return "prio";
    case SchedKind::kCustom: return "pifo";
  }
  return "slack";
}

std::optional<SchedKind> sched_kind_from_name(std::string_view name) {
  if (name == "slack") return SchedKind::kSlack;
  if (name == "fifo") return SchedKind::kFifo;
  if (name == "wfq") return SchedKind::kWfq;
  if (name == "stfq") return SchedKind::kStfq;
  if (name == "edf") return SchedKind::kEdf;
  if (name == "prio") return SchedKind::kPrio;
  if (name == "pifo") return SchedKind::kCustom;
  return std::nullopt;
}

std::string builtin_rank_source(SchedKind kind) {
  switch (kind) {
    case SchedKind::kSlack:
      return "rank = slack\n";
    case SchedKind::kFifo:
      return "rank = 0\n";
    case SchedKind::kWfq:
      // Start-time fair queueing with per-tenant weights; costs are
      // scaled by 1024 so integer division keeps resolution.
      return "flow.start = max(flow.finish, vtime)\n"
             "flow.finish = flow.start + (bytes * 1024) / weight\n"
             "rank = flow.start\n";
    case SchedKind::kStfq:
      return "flow.start = max(flow.finish, vtime)\n"
             "flow.finish = flow.start + bytes\n"
             "rank = flow.start\n";
    case SchedKind::kEdf:
      return "rank = created + slack\n";
    case SchedKind::kPrio:
      return "rank = tenant\n";
    case SchedKind::kCustom:
      return "";
  }
  return "";
}

std::uint32_t SchedSpec::weight_for(std::uint16_t tenant) const {
  for (const auto& [t, w] : weights) {
    if (t == tenant) return w == 0 ? 1 : w;
  }
  return 1;
}

void SchedSpec::set_weight(std::uint16_t tenant, std::uint32_t weight) {
  for (auto& [t, w] : weights) {
    if (t == tenant) {
      w = weight;
      return;
    }
  }
  weights.emplace_back(tenant, weight);
  std::sort(weights.begin(), weights.end());
}

namespace {

/// Read-only input slots, in RankInputs declaration order.
constexpr std::string_view kInputNames[] = {
    "slack", "tenant", "flow",  "bytes",  "now",
    "created", "seq",  "vtime", "weight", "kind",
};

std::string line_error(int line, const std::string& reason) {
  return "line " + std::to_string(line) + ": " + reason;
}

}  // namespace

std::optional<RankProgram> RankProgram::compile(std::string_view source,
                                                std::string* error) {
  RankProgram p;
  p.source_ = std::string(source);

  // name -> slot for flow./queue. state vars, registered on first mention
  // (lvalue or read) so statements can read state a later line writes.
  std::unordered_map<std::string, std::uint32_t> state_slots;
  auto state_slot = [&](std::string_view name,
                        bool is_flow) -> std::uint32_t {
    const auto it = state_slots.find(std::string(name));
    if (it != state_slots.end()) return it->second;
    StateVar var;
    var.is_flow = is_flow;
    var.ordinal = is_flow ? p.flow_slots_++ : p.queue_slots_++;
    const auto slot =
        static_cast<std::uint32_t>(kStateBase + p.state_vars_.size());
    p.state_vars_.push_back(var);
    state_slots.emplace(std::string(name), slot);
    return slot;
  };
  auto resolve = [&](std::string_view name) -> std::optional<std::uint32_t> {
    for (std::uint32_t i = 0; i < kInputCount; ++i) {
      if (name == kInputNames[i]) return i;
    }
    if (name == "rank") return kRankSlot;
    if (name.rfind("flow.", 0) == 0 && name.size() > 5) {
      return state_slot(name, /*is_flow=*/true);
    }
    if (name.rfind("queue.", 0) == 0 && name.size() > 6) {
      return state_slot(name, /*is_flow=*/false);
    }
    return std::nullopt;
  };

  auto fail = [&](int line, const std::string& reason) {
    if (error != nullptr) *error = line_error(line, reason);
    return std::nullopt;
  };

  // Statements are newline- or ';'-separated.  Comments run to end of
  // line and are stripped before the ';' split so a ';' inside a comment
  // does not start a statement.
  std::vector<std::string_view> statements;
  std::vector<int> statement_lines;
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    std::size_t nl = source.find('\n', pos);
    if (nl == std::string_view::npos) nl = source.size();
    std::string_view full_line = source.substr(pos, nl - pos);
    ++lineno;
    const std::size_t hash = full_line.find('#');
    if (hash != std::string_view::npos) full_line = full_line.substr(0, hash);
    const std::size_t slashes = full_line.find("//");
    if (slashes != std::string_view::npos) {
      full_line = full_line.substr(0, slashes);
    }
    std::size_t sstart = 0;
    while (sstart <= full_line.size()) {
      std::size_t send = full_line.find(';', sstart);
      if (send == std::string_view::npos) send = full_line.size();
      statements.push_back(full_line.substr(sstart, send - sstart));
      statement_lines.push_back(lineno);
      if (send == full_line.size()) break;
      sstart = send + 1;
    }
    if (nl == source.size()) break;
    pos = nl + 1;
  }

  bool saw_statement = false;
  for (std::size_t si = 0; si < statements.size(); ++si) {
    const std::string_view stmt = statements[si];
    const int this_line = statement_lines[si];

    lang::Cursor cur(stmt);
    if (cur.cur.kind == lang::TokKind::kEnd) continue;  // blank / comment
    if (cur.cur.kind != lang::TokKind::kIdent) {
      return fail(this_line, "expected variable assignment");
    }
    const std::string lhs = cur.cur.text;
    cur.advance();

    if (lhs == "key") {
      if (saw_statement) {
        return fail(this_line, "'key' must be the first statement");
      }
      if (cur.cur.kind != lang::TokKind::kIdent ||
          (cur.cur.text != "tenant" && cur.cur.text != "flow")) {
        return fail(this_line, "key must be 'tenant' or 'flow'");
      }
      p.keyed_by_flow_ = cur.cur.text == "flow";
      cur.advance();
      if (cur.cur.kind != lang::TokKind::kEnd) {
        return fail(this_line,
                    "unexpected trailing token '" + cur.cur.text + "'");
      }
      continue;
    }

    std::uint32_t dst = 0;
    if (lhs == "rank") {
      dst = kRankSlot;
    } else if ((lhs.rfind("flow.", 0) == 0 && lhs.size() > 5) ||
               (lhs.rfind("queue.", 0) == 0 && lhs.size() > 6)) {
      dst = state_slot(lhs, /*is_flow=*/lhs[0] == 'f');
    } else {
      bool is_input = false;
      for (const std::string_view input : kInputNames) {
        if (lhs == input) is_input = true;
      }
      return fail(this_line,
                  is_input
                      ? "cannot assign read-only input '" + lhs + "'"
                      : "can only assign 'rank', 'flow.<name>' or "
                        "'queue.<name>' (got '" +
                            lhs + "')");
    }

    if (cur.cur.kind != lang::TokKind::kAssign) {
      return fail(this_line, "expected '=' after '" + lhs + "'");
    }
    cur.advance();

    std::string expr_error;
    auto expr = lang::Expr::parse(cur, resolve, &expr_error);
    if (!expr.has_value()) return fail(this_line, expr_error);
    if (cur.cur.kind != lang::TokKind::kEnd) {
      return fail(this_line,
                  "unexpected trailing token '" + cur.cur.text + "'");
    }
    Statement s;
    s.dst = dst;
    s.expr = std::move(*expr);
    s.line = this_line;
    p.statements_.push_back(std::move(s));
    saw_statement = true;
  }

  bool assigns_rank = false;
  int last_line = 1;
  for (const Statement& s : p.statements_) {
    if (s.dst == kRankSlot) assigns_rank = true;
    last_line = s.line;
  }
  if (!assigns_rank) {
    return fail(last_line, "program never assigns 'rank'");
  }

  // Fast paths: exactly one statement of the form `rank = slack` or
  // `rank = <const>` (the legacy slack / fifo policies).
  if (p.statements_.size() == 1 && p.statements_[0].dst == kRankSlot) {
    std::uint32_t slot = 0;
    if (p.statements_[0].expr.is_var(&slot) && slot == 0) {
      p.trivial_slack_ = true;
    }
    std::uint64_t value = 0;
    if (p.statements_[0].expr.is_const(&value)) {
      p.trivial_const_ = true;
      p.const_rank_ = value;
    }
  }
  return p;
}

std::shared_ptr<const RankProgram> RankProgram::compile_spec(
    const SchedSpec& spec, std::string* error) {
  const std::string source = spec.source();
  if (source.empty()) {
    if (error != nullptr) {
      *error = "line 1: empty rank program";
    }
    return nullptr;
  }
  auto p = compile(source, error);
  if (!p.has_value()) return nullptr;
  return std::make_shared<const RankProgram>(std::move(*p));
}

std::uint64_t RankProgram::evaluate(
    const RankInputs& in, const RankState& state,
    std::vector<std::uint64_t>& scratch) const {
  scratch.assign(total_slots(), 0);
  scratch[0] = in.slack;
  scratch[1] = in.tenant;
  scratch[2] = in.flow;
  scratch[3] = in.bytes;
  scratch[4] = in.now;
  scratch[5] = in.created;
  scratch[6] = in.seq;
  scratch[7] = in.vtime;
  scratch[8] = in.weight;
  scratch[9] = in.kind;
  if (!state_vars_.empty()) {
    const std::vector<std::uint64_t>* flow_state = nullptr;
    if (flow_slots_ > 0) {
      const auto it = state.flows.find(state_key(in));
      if (it != state.flows.end()) flow_state = &it->second;
    }
    for (std::size_t i = 0; i < state_vars_.size(); ++i) {
      const StateVar& var = state_vars_[i];
      if (var.is_flow) {
        if (flow_state != nullptr && var.ordinal < flow_state->size()) {
          scratch[kStateBase + i] = (*flow_state)[var.ordinal];
        }
      } else if (var.ordinal < state.queue.size()) {
        scratch[kStateBase + i] = state.queue[var.ordinal];
      }
    }
  }
  for (const Statement& s : statements_) {
    scratch[s.dst] = s.expr.eval(scratch.data());
  }
  return scratch[kRankSlot];
}

void RankProgram::commit(RankState& state,
                         const std::vector<std::uint64_t>& scratch,
                         std::uint64_t key) const {
  if (state_vars_.empty()) return;
  std::vector<std::uint64_t>* flow_state = nullptr;
  if (flow_slots_ > 0) {
    flow_state = &state.flows[key];
    flow_state->resize(flow_slots_, 0);
  }
  if (queue_slots_ > 0) state.queue.resize(queue_slots_, 0);
  for (std::size_t i = 0; i < state_vars_.size(); ++i) {
    const StateVar& var = state_vars_[i];
    if (var.is_flow) {
      (*flow_state)[var.ordinal] = scratch[kStateBase + i];
    } else {
      state.queue[var.ordinal] = scratch[kStateBase + i];
    }
  }
}

}  // namespace panic::engines
