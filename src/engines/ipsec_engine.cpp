#include "engines/ipsec_engine.h"

#include <cmath>

#include "common/log.h"
#include "net/packet.h"
#include "telemetry/telemetry.h"

namespace panic::engines {
namespace {

constexpr std::size_t kTagBytes = 8;

std::array<std::uint8_t, ChaCha20::kNonceBytes> nonce_for(std::uint32_t spi,
                                                          std::uint32_t seq) {
  std::array<std::uint8_t, ChaCha20::kNonceBytes> nonce{};
  nonce[0] = static_cast<std::uint8_t>(spi >> 24);
  nonce[1] = static_cast<std::uint8_t>(spi >> 16);
  nonce[2] = static_cast<std::uint8_t>(spi >> 8);
  nonce[3] = static_cast<std::uint8_t>(spi);
  nonce[4] = static_cast<std::uint8_t>(seq >> 24);
  nonce[5] = static_cast<std::uint8_t>(seq >> 16);
  nonce[6] = static_cast<std::uint8_t>(seq >> 8);
  nonce[7] = static_cast<std::uint8_t>(seq);
  return nonce;
}

}  // namespace

IpsecEngine::IpsecEngine(std::string name, noc::NetworkInterface* ni,
                         const EngineConfig& config,
                         const IpsecConfig& ipsec)
    : Engine(std::move(name), ni, config), ipsec_(ipsec) {}

void IpsecEngine::install_sa(std::uint32_t spi) { (void)spi; }

std::array<std::uint8_t, ChaCha20::kKeyBytes> IpsecEngine::key_for_spi(
    std::uint32_t spi) {
  std::array<std::uint8_t, ChaCha20::kKeyBytes> key{};
  std::uint64_t x = spi * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
  for (auto& b : key) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    b = static_cast<std::uint8_t>(x);
  }
  return key;
}

std::vector<std::uint8_t> IpsecEngine::encapsulate(
    std::span<const std::uint8_t> inner_frame, std::uint32_t spi,
    std::uint32_t seq) {
  const auto inner = parse_frame(inner_frame);
  // Encrypt the inner IPv4 packet (bytes after the Ethernet header).
  const std::size_t ip_off = EthernetHeader::kSize;
  const auto inner_ip = inner_frame.subspan(
      ip_off, inner && inner->ipv4 ? inner->ipv4->total_length
                                   : inner_frame.size() - ip_off);

  const auto key = key_for_spi(spi);
  const auto nonce = nonce_for(spi, seq);
  ChaCha20 cipher(key, nonce);
  auto ct = cipher.apply(inner_ip);
  const std::uint64_t tag = auth_tag(ct, key);
  for (int i = 7; i >= 0; --i) {
    ct.push_back(static_cast<std::uint8_t>(tag >> (8 * i)));
  }

  // Outer headers: reuse the inner addresses as tunnel endpoints (a full
  // implementation would use SA tunnel addresses; irrelevant here).
  FrameBuilder fb;
  EthernetHeader eth;
  if (inner.has_value()) eth = inner->eth;
  fb.eth(eth.src, eth.dst);
  const Ipv4Addr src = inner && inner->ipv4 ? inner->ipv4->src
                                            : Ipv4Addr(192, 0, 2, 1);
  const Ipv4Addr dst = inner && inner->ipv4 ? inner->ipv4->dst
                                            : Ipv4Addr(192, 0, 2, 2);
  fb.ipv4(src, dst);
  fb.esp(spi, seq);
  fb.payload(ct);
  return fb.build();
}

std::optional<std::vector<std::uint8_t>> IpsecEngine::decapsulate(
    std::span<const std::uint8_t> esp_frame) {
  const auto parsed = parse_frame(esp_frame);
  if (!parsed.has_value() || !parsed->esp.has_value()) return std::nullopt;
  const auto payload = parsed->payload(esp_frame);
  if (payload.size() < kTagBytes) return std::nullopt;

  const auto key = key_for_spi(parsed->esp->spi);
  const auto ct = payload.first(payload.size() - kTagBytes);
  std::uint64_t tag = 0;
  for (std::size_t i = 0; i < kTagBytes; ++i) {
    tag = (tag << 8) | payload[ct.size() + i];
  }
  if (auth_tag(ct, key) != tag) return std::nullopt;

  const auto nonce = nonce_for(parsed->esp->spi, parsed->esp->seq);
  ChaCha20 cipher(key, nonce);
  const auto inner_ip = cipher.apply(ct);

  // Rebuild the clear frame: original Ethernet header + inner IP packet.
  std::vector<std::uint8_t> out(esp_frame.begin(),
                                esp_frame.begin() + EthernetHeader::kSize);
  out.insert(out.end(), inner_ip.begin(), inner_ip.end());
  if (out.size() < 64) out.resize(64, 0);
  return out;
}

Cycles IpsecEngine::service_time(const Message& msg) const {
  return ipsec_.setup_cycles +
         static_cast<Cycles>(std::ceil(static_cast<double>(msg.data.size()) *
                                       ipsec_.cycles_per_byte));
}

bool IpsecEngine::process(Message& msg, Cycle now) {
  (void)now;
  if (msg.kind != MessageKind::kPacket) return true;

  if (ipsec_.mode == IpsecMode::kDecrypt) {
    auto inner = decapsulate(msg.data);
    if (!inner.has_value()) {
      ++auth_failures_;
      PANIC_DEBUG("ipsec", "%s: dropping frame, ESP authentication failed",
                  name().c_str());
      return false;  // drop: failed authentication
    }
    msg.data = std::move(*inner);
    msg.meta_valid = false;  // stale: must re-parse in the RMT pipeline
    ++decrypted_;
    // The rest of the chain was unknowable before decryption; the chain
    // either names the RMT pipeline next or the lookup table's default
    // route sends the message back there (§3.1.2).
    return true;
  }

  msg.data = encapsulate(msg.data, ipsec_.default_spi, next_seq_++);
  msg.meta_valid = false;
  ++encrypted_;
  return true;
}

void IpsecEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "decrypted", &decrypted_);
  m.expose_counter(metric_prefix() + "encrypted", &encrypted_);
  m.expose_counter(metric_prefix() + "auth_failures", &auth_failures_);
}

}  // namespace panic::engines
