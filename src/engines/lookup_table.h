// Lightweight per-engine lookup table (§3.1.2).
//
// After an engine finishes with a message it consults the chain header for
// the next hop.  When the chain is exhausted (or was never computable —
// e.g. freshly decrypted traffic), this table supplies the route: either a
// per-message-kind entry or the default route back to the heavyweight RMT
// pipeline ("either a default route back to the heavyweight RMT pipeline
// is installed at the engine or the RMT pipeline includes itself as a
// nexthop").  Lookups cost one cycle (modelled by the engine's forwarding
// path).
#pragma once

#include <array>
#include <optional>

#include "common/ids.h"
#include "net/message.h"

namespace panic::engines {

class LocalLookupTable {
 public:
  /// Default next hop when nothing more specific matches.
  void set_default(EngineId engine) { default_ = engine; }

  /// Route for a particular message kind (e.g. kDmaRead -> the DMA tile).
  void set_kind_route(MessageKind kind, EngineId engine) {
    kind_routes_[static_cast<std::size_t>(kind)] = engine;
  }

  /// Next hop for `msg`: explicit chain hop if present, else kind route,
  /// else the default.  Returns nullopt if no route exists (caller treats
  /// the message as terminating here).
  std::optional<EngineId> route(const Message& msg) const {
    if (const auto hop = msg.chain.current(); hop.has_value()) {
      return hop->engine;
    }
    const auto& kr = kind_routes_[static_cast<std::size_t>(msg.kind)];
    if (kr.has_value()) return kr;
    return default_;
  }

  bool has_default() const { return default_.has_value(); }

 private:
  static constexpr std::size_t kKinds = 16;  // >= number of MessageKinds
  std::optional<EngineId> default_;
  std::array<std::optional<EngineId>, kKinds> kind_routes_{};
};

}  // namespace panic::engines
