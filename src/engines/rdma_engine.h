// RDMA engine (§3.2): receives KVS GETs that hit in the location cache,
// issues a DMA read for the value, and when the completion returns
// generates the reply packet and injects it back toward the wire — the
// host CPU never sees the request.
#pragma once

#include <unordered_map>

#include "engines/engine.h"

namespace panic::engines {

struct RdmaConfig {
  Cycles request_cycles = 8;   ///< build/issue a DMA work element
  Cycles response_cycles = 12; ///< assemble reply headers
  EngineId dma_engine;         ///< where DMA reads are sent
  std::size_t max_outstanding = 64;
};

class RdmaEngine : public Engine {
 public:
  RdmaEngine(std::string name, noc::NetworkInterface* ni,
             const EngineConfig& config, const RdmaConfig& rdma);

  std::uint64_t requests_issued() const { return issued_; }
  std::uint64_t replies_generated() const { return replies_; }
  std::uint64_t overflow_drops() const { return overflow_; }

  void register_telemetry(telemetry::Telemetry& t) override;

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  struct PendingOp {
    std::uint16_t tenant = 0;
    std::uint64_t key = 0;
    std::uint32_t request_id = 0;
    std::uint32_t src_ip = 0;  ///< requester (reply dst)
    std::uint32_t dst_ip = 0;  ///< server (reply src)
    std::uint32_t slack = 0;
    Cycle created_at = 0;
    Cycle nic_ingress_at = 0;
    EngineId ingress_port;
  };

  RdmaConfig rdma_;
  std::unordered_map<std::uint32_t, PendingOp> pending_;  // by request_id

  std::uint64_t issued_ = 0;
  std::uint64_t replies_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace panic::engines
