#include "engines/lz77.h"

#include <array>
#include <cstring>

namespace panic::engines {
namespace {

constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t hash4(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void flush_literals(std::vector<std::uint8_t>& out,
                    std::span<const std::uint8_t> input, std::size_t start,
                    std::size_t end) {
  while (start < end) {
    const std::size_t n = std::min<std::size_t>(end - start, 255);
    out.push_back(0x00);
    out.push_back(static_cast<std::uint8_t>(n));
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(start),
               input.begin() + static_cast<std::ptrdiff_t>(start + n));
    start += n;
  }
}

}  // namespace

std::vector<std::uint8_t> lz77_compress(std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  out.reserve(input.size() / 2 + 16);

  std::array<std::int64_t, kHashSize> head;
  head.fill(-1);

  std::size_t literal_start = 0;
  std::size_t pos = 0;

  while (pos + kLzMinMatch <= input.size()) {
    const std::uint32_t h = hash4(input.data() + pos);
    const std::int64_t candidate = head[h];
    head[h] = static_cast<std::int64_t>(pos);

    std::size_t match_len = 0;
    if (candidate >= 0 &&
        pos - static_cast<std::size_t>(candidate) <= kLzWindow) {
      const auto* a = input.data() + candidate;
      const auto* b = input.data() + pos;
      const std::size_t limit =
          std::min(kLzMaxMatch, input.size() - pos);
      while (match_len < limit && a[match_len] == b[match_len]) {
        ++match_len;
      }
    }

    if (match_len >= kLzMinMatch) {
      flush_literals(out, input, literal_start, pos);
      const auto dist =
          static_cast<std::uint16_t>(pos - static_cast<std::size_t>(candidate));
      out.push_back(0x01);
      out.push_back(static_cast<std::uint8_t>(dist >> 8));
      out.push_back(static_cast<std::uint8_t>(dist));
      out.push_back(static_cast<std::uint8_t>(match_len));
      // Index the skipped positions so later matches can refer into them.
      const std::size_t end = pos + match_len;
      for (++pos; pos < end && pos + kLzMinMatch <= input.size(); ++pos) {
        head[hash4(input.data() + pos)] = static_cast<std::int64_t>(pos);
      }
      pos = end;
      literal_start = pos;
    } else {
      ++pos;
    }
  }

  flush_literals(out, input, literal_start, input.size());
  return out;
}

std::optional<std::vector<std::uint8_t>> lz77_decompress(
    std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::uint8_t tag = input[pos++];
    if (tag == 0x00) {
      if (pos >= input.size()) return std::nullopt;
      const std::size_t n = input[pos++];
      if (n == 0 || pos + n > input.size()) return std::nullopt;
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(pos),
                 input.begin() + static_cast<std::ptrdiff_t>(pos + n));
      pos += n;
    } else if (tag == 0x01) {
      if (pos + 3 > input.size()) return std::nullopt;
      const std::size_t dist =
          (static_cast<std::size_t>(input[pos]) << 8) | input[pos + 1];
      const std::size_t len = input[pos + 2];
      pos += 3;
      if (dist == 0 || dist > out.size() || len < kLzMinMatch) {
        return std::nullopt;
      }
      // Byte-by-byte copy: overlapping matches (dist < len) are valid and
      // replicate the most recent bytes.
      const std::size_t start = out.size() - dist;
      for (std::size_t i = 0; i < len; ++i) {
        out.push_back(out[start + i]);
      }
    } else {
      return std::nullopt;
    }
  }
  return out;
}

}  // namespace panic::engines
