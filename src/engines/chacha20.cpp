#include "engines/chacha20.h"

#include <cassert>
#include <cstring>

namespace panic::engines {
namespace {

constexpr std::uint32_t rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                   std::uint32_t& d) {
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}

std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

}  // namespace

ChaCha20::ChaCha20(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> nonce,
                   std::uint32_t initial_counter)
    : counter_(initial_counter) {
  assert(key.size() == kKeyBytes);
  assert(nonce.size() == kNonceBytes);
  // "expand 32-byte k"
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) {
    state_[4 + i] = load_le32(key.data() + 4 * i);
  }
  state_[12] = 0;  // counter, set per block
  state_[13] = load_le32(nonce.data());
  state_[14] = load_le32(nonce.data() + 4);
  state_[15] = load_le32(nonce.data() + 8);
}

std::array<std::uint8_t, ChaCha20::kBlockBytes> ChaCha20::keystream_block(
    std::uint32_t counter) const {
  std::array<std::uint32_t, 16> x = state_;
  x[12] = counter;
  std::array<std::uint32_t, 16> working = x;
  for (int round = 0; round < 10; ++round) {  // 20 rounds = 10 double rounds
    quarter_round(working[0], working[4], working[8], working[12]);
    quarter_round(working[1], working[5], working[9], working[13]);
    quarter_round(working[2], working[6], working[10], working[14]);
    quarter_round(working[3], working[7], working[11], working[15]);
    quarter_round(working[0], working[5], working[10], working[15]);
    quarter_round(working[1], working[6], working[11], working[12]);
    quarter_round(working[2], working[7], working[8], working[13]);
    quarter_round(working[3], working[4], working[9], working[14]);
  }
  std::array<std::uint8_t, kBlockBytes> out;
  for (int i = 0; i < 16; ++i) {
    store_le32(out.data() + 4 * i, working[i] + x[i]);
  }
  return out;
}

void ChaCha20::apply_inplace(std::span<std::uint8_t> data) {
  std::uint32_t counter = counter_;
  std::size_t offset = 0;
  while (offset < data.size()) {
    const auto block = keystream_block(counter++);
    const std::size_t n = std::min(kBlockBytes, data.size() - offset);
    for (std::size_t i = 0; i < n; ++i) {
      data[offset + i] ^= block[i];
    }
    offset += n;
  }
  counter_ = counter;
}

std::vector<std::uint8_t> ChaCha20::apply(
    std::span<const std::uint8_t> input) {
  std::vector<std::uint8_t> out(input.begin(), input.end());
  apply_inplace(out);
  return out;
}

std::uint64_t auth_tag(std::span<const std::uint8_t> data,
                       std::span<const std::uint8_t> key) {
  // Polynomial MAC over 2^61-1 with a key-derived evaluation point.
  // Sufficient for detecting corruption inside the simulator.
  constexpr std::uint64_t kPrime = (1ull << 61) - 1;
  std::uint64_t r = 0;
  for (std::size_t i = 0; i < key.size(); ++i) {
    r = r * 131 + key[i];
  }
  r = (r % (kPrime - 2)) + 2;
  unsigned __int128 acc = 0;
  for (std::uint8_t byte : data) {
    acc = (acc * r + byte + 1) % kPrime;
  }
  return static_cast<std::uint64_t>(acc);
}

}  // namespace panic::engines
