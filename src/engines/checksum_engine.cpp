#include "engines/checksum_engine.h"

#include <cmath>

#include "net/checksum.h"
#include "net/packet.h"
#include "telemetry/telemetry.h"

namespace panic::engines {
namespace {

/// Sums the IPv4 pseudo-header + L4 segment; returns the offset of the
/// checksum field, or 0 if the frame has no UDP/TCP.
std::size_t l4_checksum_offset(const ParsedFrame& parsed) {
  constexpr std::size_t l4_off = EthernetHeader::kSize + Ipv4Header::kSize;
  if (parsed.udp.has_value()) return l4_off + 6;
  if (parsed.tcp.has_value()) return l4_off + 16;
  return 0;
}

std::uint16_t compute_l4_checksum(std::span<const std::uint8_t> frame,
                                  const ParsedFrame& parsed) {
  const std::size_t l4_off = EthernetHeader::kSize + Ipv4Header::kSize;
  const std::size_t l4_len = parsed.ipv4->total_length - Ipv4Header::kSize;

  std::uint8_t pseudo[12];
  const std::uint32_t src = parsed.ipv4->src.value();
  const std::uint32_t dst = parsed.ipv4->dst.value();
  pseudo[0] = static_cast<std::uint8_t>(src >> 24);
  pseudo[1] = static_cast<std::uint8_t>(src >> 16);
  pseudo[2] = static_cast<std::uint8_t>(src >> 8);
  pseudo[3] = static_cast<std::uint8_t>(src);
  pseudo[4] = static_cast<std::uint8_t>(dst >> 24);
  pseudo[5] = static_cast<std::uint8_t>(dst >> 16);
  pseudo[6] = static_cast<std::uint8_t>(dst >> 8);
  pseudo[7] = static_cast<std::uint8_t>(dst);
  pseudo[8] = 0;
  pseudo[9] = parsed.ipv4->protocol;
  pseudo[10] = static_cast<std::uint8_t>(l4_len >> 8);
  pseudo[11] = static_cast<std::uint8_t>(l4_len);

  std::uint32_t sum = internet_checksum_partial({pseudo, 12}, 0);
  sum = internet_checksum_partial(frame.subspan(l4_off, l4_len), sum);
  std::uint16_t result = internet_checksum_finish(sum);
  // An all-zero UDP checksum means "not computed"; RFC 768 substitutes
  // 0xFFFF.
  if (result == 0 && parsed.udp.has_value()) result = 0xFFFF;
  return result;
}

}  // namespace

ChecksumEngine::ChecksumEngine(std::string name, noc::NetworkInterface* ni,
                               const EngineConfig& config,
                               const ChecksumConfig& checksum)
    : Engine(std::move(name), ni, config), checksum_(checksum) {}

bool ChecksumEngine::fill_l4_checksum(std::vector<std::uint8_t>& frame) {
  // Parse without trusting the (about to be rewritten) checksum field.
  auto parsed = parse_frame(frame);
  if (!parsed.has_value() || !parsed->ipv4.has_value()) return false;
  const std::size_t off = l4_checksum_offset(*parsed);
  if (off == 0) return false;
  // Zero the field before summing.
  frame[off] = 0;
  frame[off + 1] = 0;
  const std::uint16_t sum = compute_l4_checksum(frame, *parsed);
  frame[off] = static_cast<std::uint8_t>(sum >> 8);
  frame[off + 1] = static_cast<std::uint8_t>(sum);
  return true;
}

bool ChecksumEngine::verify_l4_checksum(
    std::span<const std::uint8_t> frame) {
  const auto parsed = parse_frame(frame);
  if (!parsed.has_value() || !parsed->ipv4.has_value()) return false;
  const std::size_t off = l4_checksum_offset(*parsed);
  if (off == 0) return false;
  const std::uint16_t stored =
      static_cast<std::uint16_t>((frame[off] << 8) | frame[off + 1]);
  if (stored == 0 && parsed->udp.has_value()) return true;  // not computed
  std::vector<std::uint8_t> copy(frame.begin(), frame.end());
  copy[off] = 0;
  copy[off + 1] = 0;
  auto reparsed = parse_frame(copy);
  return compute_l4_checksum(copy, *reparsed) == stored;
}

Cycles ChecksumEngine::service_time(const Message& msg) const {
  return checksum_.setup_cycles +
         static_cast<Cycles>(std::ceil(static_cast<double>(msg.data.size()) *
                                       checksum_.cycles_per_byte));
}

bool ChecksumEngine::process(Message& msg, Cycle now) {
  (void)now;
  if (msg.kind == MessageKind::kPacket && fill_l4_checksum(msg.data)) {
    ++done_;
  } else {
    ++skipped_;
  }
  return true;
}

void ChecksumEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "checksummed", &done_);
  m.expose_counter(metric_prefix() + "skipped", &skipped_);
}

}  // namespace panic::engines
