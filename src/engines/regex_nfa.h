// Thompson-construction NFA regex matcher — the compute core of the
// regex/DPI offload engine (§1 lists "regular expression engines" among
// the offload types PANIC must host).
//
// Supported syntax: literals, '.', character classes [a-z], '*', '+',
// '?', alternation '|', grouping '()', and '\' escapes.  Matching runs all
// NFA states in lockstep (Thompson's algorithm: O(states · bytes), no
// backtracking blowup) and reports whether the pattern occurs anywhere in
// the input (unanchored search).
#pragma once

#include <cstdint>
#include <bitset>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace panic::engines {

class Regex {
 public:
  /// Compiles `pattern`; returns nullopt on syntax errors.
  static std::optional<Regex> compile(std::string_view pattern);

  /// True if the pattern matches anywhere in `input`.
  bool search(std::span<const std::uint8_t> input) const;
  bool search(std::string_view input) const {
    return search(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(input.data()), input.size()));
  }

  std::size_t num_states() const { return states_.size(); }
  const std::string& pattern() const { return pattern_; }

 private:
  struct State {
    // A state either consumes a byte matching `klass` and moves to `next`,
    // or is an epsilon split to `next` and `next2`, or is the accept.
    enum class Kind : std::uint8_t { kByte, kSplit, kAccept } kind;
    std::bitset<256> klass;  // kByte: accepted bytes
    int next = -1;
    int next2 = -1;
  };

  Regex() = default;

  class Compiler;

  void add_closure(int state, std::vector<bool>& set,
                   std::vector<int>& list) const;

  std::string pattern_;
  std::vector<State> states_;
  int start_ = -1;
};

}  // namespace panic::engines
