// Per-tenant rate-limiter engine (SENIC-style — Table 1 lists SENIC as
// the canonical "Infrastructure / Inline / Network" offload: scalable NIC
// rate limiting for end hosts).
//
// Token-bucket per tenant: each tenant accrues `rate_bytes_per_cycle`
// tokens up to `burst_bytes`.  A packet that finds enough tokens passes
// immediately; otherwise it is either delayed until its tokens accrue
// (shaping) or dropped (policing).
#pragma once

#include <unordered_map>

#include "engines/engine.h"

namespace panic::engines {

enum class LimiterMode : std::uint8_t {
  kShape,   ///< hold packets until tokens accrue (adds latency)
  kPolice,  ///< drop packets that exceed the rate
};

struct RateLimiterConfig {
  LimiterMode mode = LimiterMode::kShape;
  /// Default limit applied to tenants without an explicit one.
  double default_rate_bytes_per_cycle = 25.0;  ///< 100 Gbps @ 500 MHz
  double default_burst_bytes = 16 * 1024;
  Cycles lookup_cycles = 2;
};

class RateLimiterEngine : public Engine {
 public:
  RateLimiterEngine(std::string name, noc::NetworkInterface* ni,
                    const EngineConfig& config,
                    const RateLimiterConfig& limiter);

  /// Installs a per-tenant limit.
  void set_tenant_rate(TenantId tenant, double bytes_per_cycle,
                       double burst_bytes);

  std::uint64_t passed() const { return passed_; }
  std::uint64_t policed() const { return policed_; }
  /// Total shaping delay imposed, in cycles.
  std::uint64_t shaped_cycles() const { return shaped_cycles_; }

  void register_telemetry(telemetry::Telemetry& t) override;

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  struct Bucket {
    double rate = 0;
    double burst = 0;
    double tokens = 0;
    Cycle updated_at = 0;
  };

  Bucket& bucket_for(TenantId tenant);
  void refill(Bucket& bucket, Cycle now) const;

  RateLimiterConfig limiter_;
  std::unordered_map<std::uint16_t, Bucket> buckets_;

  std::uint64_t passed_ = 0;
  std::uint64_t policed_ = 0;
  std::uint64_t shaped_cycles_ = 0;

  // Shaping state for the message in service: extra wait computed when
  // service starts (service_time is const; we stash the pending delay).
  mutable Cycles pending_delay_ = 0;
};

}  // namespace panic::engines
