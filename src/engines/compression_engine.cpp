#include "engines/compression_engine.h"

#include <cmath>

#include "net/packet.h"
#include "telemetry/telemetry.h"

namespace panic::engines {
namespace {
constexpr std::uint8_t kMarkerCompressed = 0xC7;
}

CompressionEngine::CompressionEngine(std::string name,
                                     noc::NetworkInterface* ni,
                                     const EngineConfig& config,
                                     const CompressionConfig& compression)
    : Engine(std::move(name), ni, config), compression_(compression) {}

Cycles CompressionEngine::service_time(const Message& msg) const {
  return compression_.setup_cycles +
         static_cast<Cycles>(std::ceil(static_cast<double>(msg.data.size()) *
                                       compression_.cycles_per_byte));
}

bool CompressionEngine::transform_payload(Message& msg) {
  auto transform = [&](std::span<const std::uint8_t> in)
      -> std::optional<std::vector<std::uint8_t>> {
    if (compression_.mode == CompressionMode::kCompress) {
      auto packed = lz77_compress(in);
      packed.insert(packed.begin(), kMarkerCompressed);
      return packed;
    }
    if (in.empty() || in[0] != kMarkerCompressed) return std::nullopt;
    return lz77_decompress(in.subspan(1));
  };

  if (msg.kind == MessageKind::kPacket) {
    const auto parsed = parse_frame(msg.data);
    if (!parsed.has_value() || parsed->payload_size == 0) return false;
    const auto payload = parsed->payload(msg.data);
    const auto replaced = transform(payload);
    if (!replaced.has_value()) return false;
    bytes_in_ += payload.size();
    bytes_out_ += replaced->size();
    msg.data = replace_l4_payload(msg.data, *parsed, *replaced);
    msg.meta_valid = false;
    return true;
  }

  const auto replaced = transform(msg.data);
  if (!replaced.has_value()) return false;
  bytes_in_ += msg.data.size();
  bytes_out_ += replaced->size();
  msg.data = *replaced;
  return true;
}

bool CompressionEngine::process(Message& msg, Cycle now) {
  (void)now;
  if (transform_payload(msg)) {
    ++ok_;
  } else {
    ++failed_;  // pass the message through unchanged
  }
  return true;
}

void CompressionEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "processed_ok", &ok_);
  m.expose_counter(metric_prefix() + "failed", &failed_);
  m.expose_counter(metric_prefix() + "bytes_in", &bytes_in_);
  m.expose_counter(metric_prefix() + "bytes_out", &bytes_out_);
}

}  // namespace panic::engines
