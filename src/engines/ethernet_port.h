// Ethernet MAC port engine.  In PANIC even the MACs are tiles on the mesh
// (Figure 3c shows "Eth 1" / "Eth 2" tiles).
//
// RX: the workload delivers frames via `deliver_rx`; the port wraps them
// in messages and sends them to its configured first hop (normally the
// heavyweight RMT pipeline).  RX pacing is the responsibility of the
// traffic generator (an open-loop source models the wire).
//
// TX: messages routed to this tile are transmitted: the engine's service
// time models wire serialization at the configured line rate, then the
// frame is recorded (and handed to an optional sink for verification).
#pragma once

#include <functional>

#include "common/stats.h"
#include "engines/engine.h"

namespace panic::engines {

class EthernetPortEngine : public Engine {
 public:
  using TxSink = std::function<void(const Message&, Cycle)>;

  EthernetPortEngine(std::string name, noc::NetworkInterface* ni,
                     const EngineConfig& config, DataRate line_rate,
                     Frequency clock);

  /// Delivers one received frame into the NIC.  `created_at` stamps the
  /// workload's generation time for end-to-end latency accounting.
  void deliver_rx(std::vector<std::uint8_t> frame_bytes, Cycle now,
                  Cycle created_at = 0, TenantId tenant = TenantId{0});

  /// Zero-allocation variant: the caller obtained `msg` from make_message
  /// and wrote the frame bytes into `msg->data` in place (a recycled
  /// buffer); the port only stamps and routes it.
  void deliver_rx(MessagePtr msg, Cycle now, Cycle created_at = 0,
                  TenantId tenant = TenantId{0});

  /// Observer for transmitted frames.
  void set_tx_sink(TxSink sink) { tx_sink_ = std::move(sink); }

  DataRate line_rate() const { return line_rate_; }

  const RateMeter& rx_meter() const { return rx_meter_; }
  const RateMeter& tx_meter() const { return tx_meter_; }
  /// Cycles from nic_ingress to transmission for packets that exited here.
  const Histogram& tx_latency() const { return tx_latency_; }

  /// Adds rx/tx packet+byte meters and the TX latency histogram.
  void register_telemetry(telemetry::Telemetry& t) override;

 protected:
  Cycles service_time(const Message& msg) const override;
  bool process(Message& msg, Cycle now) override;

 private:
  DataRate line_rate_;
  Frequency clock_;
  TxSink tx_sink_;
  RateMeter rx_meter_;
  RateMeter tx_meter_;
  Histogram tx_latency_;
};

}  // namespace panic::engines
