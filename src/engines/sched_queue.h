// The logical scheduler's per-engine queue (§3.1.3).
//
// Every engine owns one of these.  Messages are inserted according to the
// slack time computed by the RMT pipeline and carried in the chain header:
// lower slack dequeues first, so latency-critical messages bypass queued
// bulk traffic.  The paper notes this "although simple ... is able to
// implement any arbitrary local scheduling algorithm" (citing UPS); the
// FIFO policy exists as the baseline that exhibits the performance
// isolation anomalies PANIC avoids.
//
// The on-chip network is lossless; drops happen here, at enqueue, when the
// queue is full (§3.1.2 "If it is necessary to drop messages, this is done
// by the logical scheduler").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "net/message.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace panic::engines {

enum class SchedPolicy : std::uint8_t {
  kSlackPriority,  ///< PANIC: dequeue lowest slack first
  kFifo,           ///< baseline: arrival order
};

/// What to do when a message arrives at a full queue — one of the paper's
/// §6 open questions ("lossless forwarding ... while also providing lossy
/// forwarding to ensure that other messages are dropped as needed").
enum class DropPolicy : std::uint8_t {
  kDropArrival,   ///< tail-drop the arriving message
  kEvictLoosest,  ///< admit the arrival by evicting the queued message
                  ///< with the largest slack (if looser than the arrival)
};

class SchedulerQueue {
 public:
  SchedulerQueue(SchedPolicy policy, std::size_t capacity,
                 DropPolicy drop_policy = DropPolicy::kDropArrival);

  SchedPolicy policy() const { return policy_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }

  /// Enqueues `msg` (keyed by msg->slack under kSlackPriority).  Returns
  /// false and drops the message if the queue is full.
  bool try_enqueue(MessagePtr msg, Cycle now);

  /// Removes and returns the highest-priority message (nullptr if empty).
  MessagePtr dequeue(Cycle now);

  /// Removes every queued message WITHOUT touching the dequeue/drop
  /// statistics — fault drains (a dead engine discarding its queue) are
  /// not scheduling decisions.  The caller assigns fates.
  std::vector<MessagePtr> evict_all();

  /// Slack of the message that would dequeue next (0 if empty).
  std::uint32_t head_slack() const;

  // --- Property-audit hooks (src/proptest / panic_fuzz). ---

  /// Process-wide audit switch.  When on, every dequeue cross-checks the
  /// chosen message against everything left in the queue: under
  /// kSlackPriority the winner must have the minimum slack (and the
  /// oldest arrival among slack ties — per-flow FIFO), under kFifo it
  /// must be the oldest arrival outright.  O(queue depth) per dequeue,
  /// so it is off by default and only armed by the fuzz harness and its
  /// tests.
  static void set_audit(bool on);
  static bool audit_enabled();

  /// Synthetic scheduling bug for harness self-tests: when armed, a
  /// dequeue from a queue holding >= 2 messages returns the SECOND-best
  /// message (a planted off-by-one).  The audit above flags it, so
  /// panic_fuzz must detect it, shrink the scenario and emit a replay —
  /// pinned by tests/proptest/minimizer_selftest.cpp.  Armed explicitly
  /// or via a non-zero PANIC_FUZZ_SELFTEST environment variable (read
  /// once, on first query, unless the setter ran first).
  static void set_selftest_bug(bool on);
  static bool selftest_bug();

  /// Dequeues the audit flagged on this queue (also published as
  /// "<prefix>.audit_violations").
  std::uint64_t audit_violations() const { return audit_violations_; }

  /// Publishes this queue's counters under `prefix` (e.g.
  /// "engine.ipsec_rx.queue") — called by the owning engine's
  /// register_telemetry.
  void register_metrics(telemetry::MetricsRegistry& m,
                        const std::string& prefix);

  /// Attributes enqueue/dequeue/drop trace events to `where` (the owning
  /// engine's trace tag).  nullptr detaches.
  void bind_tracer(telemetry::MessageTracer* tracer, std::uint16_t where) {
    tracer_ = tracer;
    trace_where_ = where;
  }

  // --- Counters (prefer the registry / Simulator::snapshot()). ---
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t max_depth() const { return max_depth_; }
  /// Total cycles messages spent queued (divide by dequeued() for mean).
  std::uint64_t total_wait_cycles() const { return total_wait_; }
  std::uint64_t dequeued() const { return dequeued_; }

 private:
  struct Item {
    MessagePtr msg;
    std::uint64_t seq;  // FIFO tie-break
    Cycle enqueued_at;
  };
  struct Order {
    SchedPolicy policy;
    // Heap comparator: returns true when a is LOWER priority than b.
    bool operator()(const Item& a, const Item& b) const {
      if (policy == SchedPolicy::kSlackPriority &&
          a.msg->slack != b.msg->slack) {
        return a.msg->slack > b.msg->slack;
      }
      return a.seq > b.seq;
    }
  };

  void trace(telemetry::TraceEventKind kind, Cycle cycle, const Message& msg) {
    if (tracer_ != nullptr) {
      tracer_->record(kind, cycle, msg.id, trace_where_, msg.slack);
    }
  }

  SchedPolicy policy_;
  std::size_t capacity_;
  DropPolicy drop_policy_;
  std::vector<Item> items_;  // maintained as a heap under Order
  std::uint64_t next_seq_ = 0;

  telemetry::MessageTracer* tracer_ = nullptr;
  std::uint16_t trace_where_ = 0;

  std::uint64_t enqueued_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dequeued_ = 0;
  std::uint64_t total_wait_ = 0;
  std::uint64_t max_depth_ = 0;
  std::uint64_t audit_violations_ = 0;
};

}  // namespace panic::engines
