// The logical scheduler's per-engine queue (§3.1.3) — a PIFO block.
//
// Every engine owns one of these.  The queue is a push-in-first-out
// priority queue in the Programmable Packet Scheduling sense: a compiled
// rank program (src/engines/rank_program.h) runs once at enqueue, the
// heap orders messages by the resulting rank, and dequeue always pops the
// minimum.  The paper notes this "although simple ... is able to
// implement any arbitrary local scheduling algorithm" (citing UPS) — rank
// programs make that literal: slack priority, FIFO, WFQ, STFQ, EDF and
// strict priority are all built-in rank programs, and scenarios can
// supply their own (`sched pifo rank=<<END`).
//
// Ordering is the TOTAL order (rank, enqueue-seq): lower rank first, and
// equal ranks dequeue in arrival order.  That tie-break is part of the
// contract — all three simulation kernels replay the same enqueue
// sequence, so dequeue order is kernel-independent (pinned by
// tests/sched/pifo_conformance_test.cpp).
//
// The on-chip network is lossless; drops happen here, at enqueue, when the
// queue is full (§3.1.2 "If it is necessary to drop messages, this is done
// by the logical scheduler").  A message dropped at admission does not
// advance the rank program's per-flow state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "engines/rank_program.h"
#include "net/message.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace panic::engines {

/// What to do when a message arrives at a full queue — one of the paper's
/// §6 open questions ("lossless forwarding ... while also providing lossy
/// forwarding to ensure that other messages are dropped as needed").
enum class DropPolicy : std::uint8_t {
  kDropArrival,   ///< tail-drop the arriving message
  kEvictLoosest,  ///< admit the arrival by evicting the queued message
                  ///< with the largest rank (if looser than the arrival)
};

class SchedulerQueue {
 public:
  /// `spec` may be a SchedSpec, a SchedKind or a legacy SchedPolicy (both
  /// convert).  A kCustom spec whose program does not compile throws
  /// std::runtime_error — scenario parsing validates first, so this only
  /// trips on programmatic misuse.
  SchedulerQueue(const SchedSpec& spec, std::size_t capacity,
                 DropPolicy drop_policy = DropPolicy::kDropArrival);

  SchedKind kind() const { return spec_.kind; }
  const SchedSpec& spec() const { return spec_; }
  /// Legacy view: kFifo stays kFifo, everything else reports slack
  /// priority (the nearest pre-PIFO policy).
  SchedPolicy policy() const {
    return spec_.kind == SchedKind::kFifo ? SchedPolicy::kFifo
                                          : SchedPolicy::kSlackPriority;
  }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return items_.size() >= capacity_; }

  /// Enqueues `msg` at the rank its program computes.  Returns false and
  /// drops the message if the queue is full (after any kEvictLoosest
  /// eviction).
  bool try_enqueue(MessagePtr msg, Cycle now);

  /// Removes and returns the minimum-rank message (nullptr if empty).
  MessagePtr dequeue(Cycle now);

  /// Removes every queued message WITHOUT touching the dequeue/drop
  /// statistics — fault drains (a dead engine discarding its queue) are
  /// not scheduling decisions.  The caller assigns fates.
  std::vector<MessagePtr> evict_all();

  /// Slack of the message that would dequeue next (0 if empty).
  std::uint32_t head_slack() const;

  /// Rank of the message that would dequeue next (0 if empty).
  std::uint64_t head_rank() const;

  /// The queue's virtual time: the maximum rank dequeued so far (STFQ /
  /// WFQ programs read this as `vtime`).
  std::uint64_t vtime() const { return vtime_; }

  // --- Property-audit hooks (src/proptest / panic_fuzz). ---

  /// Process-wide audit switch.  When on, every dequeue cross-checks the
  /// chosen message against everything left in the queue under the
  /// explicit (rank, seq) total order — deliberately NOT the heap's own
  /// comparator, so comparator bugs (see set_selftest_tiebug) are caught
  /// — and against a shadow copy of the queue whose ranks come from an
  /// independent interpreted evaluation of the same rank program.
  /// O(queue depth) per dequeue, so it is off by default and only armed
  /// by the fuzz harness and its tests.
  static void set_audit(bool on);
  static bool audit_enabled();

  /// Synthetic scheduling bug for harness self-tests: when armed, a
  /// dequeue from a queue holding >= 2 messages returns the SECOND-best
  /// message (a planted off-by-one).  The audit above flags it, so
  /// panic_fuzz must detect it, shrink the scenario and emit a replay —
  /// pinned by tests/proptest/minimizer_selftest.cpp.  Armed explicitly
  /// or via a non-zero PANIC_FUZZ_SELFTEST environment variable (read
  /// once, on first query, unless the setter ran first).
  static void set_selftest_bug(bool on);
  static bool selftest_bug();

  /// Second planted bug, in the tie-break itself: when armed, equal-rank
  /// messages dequeue NEWEST-first instead of oldest-first (an off-by-one
  /// in the comparator).  Because it lives inside the heap's Order, only
  /// an audit that re-derives the (rank, seq) order independently can see
  /// it — which is exactly what the audit above does.  Armed explicitly
  /// or via PANIC_FUZZ_TIE_SELFTEST (same once-only rules as above);
  /// exercised by `panic_fuzz --selftest-tie`.
  static void set_selftest_tiebug(bool on);
  static bool selftest_tiebug();

  /// Dequeues the audit flagged on this queue (also published as
  /// "<prefix>.audit_violations").
  std::uint64_t audit_violations() const { return audit_violations_; }

  /// Publishes this queue's counters under `prefix` (e.g.
  /// "engine.ipsec_rx.queue") — called by the owning engine's
  /// register_telemetry.  Non-legacy policies additionally publish the
  /// "<prefix>.pifo.*" family (rank_evals, vtime, flows); the legacy
  /// slack/fifo kinds do not, keeping their metric namespace bit-identical
  /// to the pre-PIFO queue.
  void register_metrics(telemetry::MetricsRegistry& m,
                        const std::string& prefix);

  /// Attributes enqueue/dequeue/drop trace events to `where` (the owning
  /// engine's trace tag).  nullptr detaches.
  void bind_tracer(telemetry::MessageTracer* tracer, std::uint16_t where) {
    tracer_ = tracer;
    trace_where_ = where;
  }

  // --- Counters (prefer the registry / Simulator::snapshot()). ---
  std::uint64_t enqueued() const { return enqueued_; }
  std::uint64_t dropped() const { return dropped_; }
  std::size_t max_depth() const { return max_depth_; }
  /// Total cycles messages spent queued (divide by dequeued() for mean).
  std::uint64_t total_wait_cycles() const { return total_wait_; }
  std::uint64_t dequeued() const { return dequeued_; }

 private:
  struct Item {
    MessagePtr msg;
    std::uint64_t rank;  // computed once, at enqueue (PIFO semantics)
    std::uint64_t seq;   // arrival order; tie-break on equal ranks
    Cycle enqueued_at;
  };
  struct Order {
    bool tiebug;
    // Heap comparator: returns true when a is LOWER priority than b
    // (dequeues later).  Total order (rank, seq); the planted tie bug
    // inverts the seq leg only.
    bool operator()(const Item& a, const Item& b) const {
      if (a.rank != b.rank) return a.rank > b.rank;
      return tiebug ? a.seq < b.seq : a.seq > b.seq;
    }
  };
  /// Shadow entry for the audit: the same message ranked by a fresh
  /// interpreted evaluation over independent state.
  struct ShadowItem {
    std::uint64_t rank;
    std::uint64_t seq;
  };

  std::uint64_t compute_rank(const Message& msg, Cycle now);
  RankInputs inputs_for(const Message& msg, Cycle now,
                        std::uint64_t vtime) const;
  void shadow_enqueue(const Message& msg, Cycle now);
  void shadow_erase(std::uint64_t seq);
  void shadow_check_dequeue(const Item& item);

  void trace(telemetry::TraceEventKind kind, Cycle cycle, const Message& msg) {
    if (tracer_ != nullptr) {
      tracer_->record(kind, cycle, msg.id, trace_where_, msg.slack);
    }
  }

  SchedSpec spec_;
  std::size_t capacity_;
  DropPolicy drop_policy_;
  std::shared_ptr<const RankProgram> program_;
  enum class FastPath : std::uint8_t { kSlackField, kConst, kProgram };
  FastPath fast_ = FastPath::kSlackField;
  std::uint64_t const_rank_ = 0;

  std::vector<Item> items_;  // maintained as a heap under Order
  std::uint64_t next_seq_ = 0;
  std::uint64_t vtime_ = 0;
  RankState state_;
  std::vector<std::uint64_t> scratch_;

  // Audit shadow (populated only while the process-wide audit is armed).
  std::vector<ShadowItem> shadow_;
  RankState shadow_state_;
  std::vector<std::uint64_t> shadow_scratch_;
  std::uint64_t shadow_vtime_ = 0;

  telemetry::MessageTracer* tracer_ = nullptr;
  std::uint16_t trace_where_ = 0;

  std::uint64_t enqueued_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t dequeued_ = 0;
  std::uint64_t total_wait_ = 0;
  std::uint64_t max_depth_ = 0;
  std::uint64_t audit_violations_ = 0;
  std::uint64_t rank_evals_ = 0;
};

}  // namespace panic::engines
