#include "engines/dma_engine.h"

#include <cassert>
#include <cmath>

#include "telemetry/telemetry.h"

namespace panic::engines {

void DmaEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  const std::string p = metric_prefix();
  m.expose_counter(p + "packets_to_host", &packets_to_host_);
  m.expose_counter(p + "reads_served", &reads_served_);
  m.expose_counter(p + "writes_served", &writes_served_);
  m.expose_histogram(p + "host_latency", &delivery_hist_);
  // Per-tenant splits that already exist; later ones register lazily.
  for (auto& [tenant, hist] : per_tenant_hist_) {
    m.expose_histogram(p + "host_latency.tenant." + std::to_string(tenant),
                       &hist);
  }
}

DmaEngine::DmaEngine(std::string name, noc::NetworkInterface* ni,
                     const EngineConfig& config, const DmaConfig& dma,
                     HostMemory* host)
    : Engine(std::move(name), ni, config), dma_(dma), host_(host),
      rng_(derive_seed(dma.seed)) {
  assert(host_ != nullptr);
}

Cycles DmaEngine::service_time(const Message& msg) const {
  std::uint32_t bytes = 0;
  switch (msg.kind) {
    case MessageKind::kPacket:
      bytes = static_cast<std::uint32_t>(msg.data.size());
      break;
    case MessageKind::kDmaRead:
      bytes = msg.dma_bytes;
      break;
    case MessageKind::kDmaWrite:
      bytes = static_cast<std::uint32_t>(msg.data.size());
      break;
    case MessageKind::kDescriptorFetch:
      bytes = 16;
      break;
    default:
      bytes = 0;
      break;
  }
  double t = static_cast<double>(dma_.base_latency) +
             static_cast<double>(bytes) / dma_.bytes_per_cycle;
  if (dma_.contention_mean > 0.0) {
    t += rng_.exponential(dma_.contention_mean);
  }
  return static_cast<Cycles>(std::ceil(t));
}

bool DmaEngine::process(Message& msg, Cycle now) {
  switch (msg.kind) {
    case MessageKind::kPacket: {
      // Deliver to the host RX ring.
      host_->write(next_ring_addr_, msg.data);
      next_ring_addr_ += (msg.data.size() + 63) & ~63ull;
      ++packets_to_host_;
      if (now >= msg.nic_ingress_at) {
        const Cycles latency = now - msg.nic_ingress_at;
        delivery_hist_.record(latency);
        auto it = per_tenant_hist_.find(msg.tenant.value);
        if (it == per_tenant_hist_.end()) {
          it = per_tenant_hist_.emplace(msg.tenant.value, Histogram{}).first;
          if (telemetry() != nullptr) {
            telemetry()->metrics().expose_histogram(
                metric_prefix() + "host_latency.tenant." +
                    std::to_string(msg.tenant.value),
                &it->second);
          }
        }
        it->second.record(latency);
        trace(telemetry::TraceEventKind::kHostDeliver, now, msg.id,
              static_cast<std::uint32_t>(latency));
      }
      // §3.2: after the DMA completes, notify the PCIe engine so it can
      // (conditionally) raise an interrupt.
      auto irq = make_message(MessageKind::kInterrupt);
      irq->slack = msg.slack;
      irq->tenant = msg.tenant;
      const auto route = lookup_table().route(*irq);
      if (route.has_value() && *route != id()) {
        emit(std::move(irq), *route, now);
      } else {
        irq->set_fate(MessageFate::kConsumed);
      }
      msg.set_fate(MessageFate::kDelivered);
      return false;  // packet consumed (lives in host memory now)
    }
    case MessageKind::kDmaRead: {
      ++reads_served_;
      if (!msg.reply_to.valid()) return false;
      auto completion = make_message(MessageKind::kDmaCompletion);
      host_->read_into(msg.dma_addr, msg.dma_bytes, completion->data);
      completion->dma_addr = msg.dma_addr;
      completion->dma_bytes = msg.dma_bytes;
      completion->tenant = msg.tenant;
      completion->slack = msg.slack;
      completion->created_at = msg.created_at;
      completion->nic_ingress_at = msg.nic_ingress_at;
      completion->ingress_port = msg.ingress_port;
      // Thread the original request id through for the requester's
      // pending-operation table.
      completion->meta = msg.meta;
      completion->meta_valid = msg.meta_valid;
      emit(std::move(completion), msg.reply_to, now);
      return false;
    }
    case MessageKind::kDmaWrite: {
      ++writes_served_;
      host_->write(msg.dma_addr, msg.data);
      if (msg.reply_to.valid()) {
        auto ack = make_message(MessageKind::kDmaCompletion);
        ack->dma_addr = msg.dma_addr;
        ack->tenant = msg.tenant;
        ack->slack = msg.slack;
        ack->meta = msg.meta;
        ack->meta_valid = msg.meta_valid;
        emit(std::move(ack), msg.reply_to, now);
      }
      return false;
    }
    case MessageKind::kDescriptorFetch: {
      ++reads_served_;
      if (msg.reply_to.valid()) {
        auto completion = make_message(MessageKind::kDmaCompletion);
        host_->read_into(msg.dma_addr, 16, completion->data);
        completion->dma_addr = msg.dma_addr;
        completion->tenant = msg.tenant;
        completion->slack = msg.slack;
        completion->meta = msg.meta;
        completion->meta_valid = msg.meta_valid;
        emit(std::move(completion), msg.reply_to, now);
      }
      return false;
    }
    default:
      // Unknown kinds pass through along their chain.
      return true;
  }
}

}  // namespace panic::engines
