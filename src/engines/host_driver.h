// Host driver model: the software side of the TX path.  Writes frames and
// TX descriptors into host memory and rings the PCIe engine's doorbell —
// exactly what a kernel driver does, minus the kernel.
#pragma once

#include <cstdint>
#include <span>

#include "common/units.h"
#include "engines/host_memory.h"
#include "engines/pcie_engine.h"

namespace panic::engines {

class HostDriver {
 public:
  HostDriver(HostMemory* host, PcieEngine* pcie);

  /// Posts one TX frame on Ethernet port `port` and rings the doorbell.
  /// Returns the descriptor address (useful for tests).
  std::uint64_t post_tx(std::span<const std::uint8_t> frame,
                        std::uint16_t port, Cycle now,
                        std::uint16_t tenant = 0);

  std::uint64_t frames_posted() const { return posted_; }

 private:
  HostMemory* host_;
  PcieEngine* pcie_;
  std::uint64_t posted_ = 0;
};

}  // namespace panic::engines
