// Host driver model: the software side of the TX path.  Writes frames and
// TX descriptors into host memory and rings the PCIe engine's doorbell —
// exactly what a kernel driver does, minus the kernel.
//
// Fault tolerance: a posted TX whose launch confirmation (the PCIe
// engine's TxLaunchCallback) never arrives — because an engine on the
// descriptor/frame-fetch path died or wedged — is retried by re-ringing
// the doorbell, up to `max_retries` times, then abandoned (counted in
// frames_failed).  Retry delays follow seeded exponential backoff with
// jitter: attempt n waits tx_timeout << (n-1) cycles (capped at
// max_backoff) plus a deterministic jitter drawn from derive_seed, so a
// storm of simultaneous posts doesn't re-ring in lockstep — yet the
// whole schedule is a pure function of (config, descriptor, attempt) and
// therefore bit-identical across kernels and re-runs (backoff_delay is
// the unit-testable core).  Timers run through Simulator::schedule_in,
// so retry behaviour is identical in every kernel mode.  Without
// attach(), post_tx behaves exactly as before (fire and forget).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "common/units.h"
#include "engines/host_memory.h"
#include "engines/pcie_engine.h"

namespace panic {
class Simulator;
}

namespace panic::engines {

struct HostDriverConfig {
  Cycles tx_timeout = 20000;  ///< base timeout before the first re-ring
  int max_retries = 3;        ///< re-rings before giving up
  /// Exponential-backoff ceiling: attempt n waits
  /// min(tx_timeout << (n-1), max_backoff) before jitter.
  Cycles max_backoff = 160000;
  /// Jitter amplitude as a fraction of the (capped) delay: the drawn
  /// delay lands in [(1-j)*base, (1+j)*base).  0 disables jitter.
  double jitter = 0.25;
  /// Per-driver jitter stream, combined with the global sim seed via
  /// derive_seed — shift PANIC_SEED and every retry schedule shifts
  /// deterministically with it.
  std::uint64_t seed = 0x7D17;
};

/// The retry delay armed after doorbell ring number `attempt` (1-based)
/// for descriptor stream `stream` (the descriptor address).  Pure:
/// exponential base capped at max_backoff, jittered by a fresh Rng
/// seeded from derive_seed of (config.seed, stream, attempt) mixed —
/// no state, so the schedule is reproducible and unit-testable in
/// isolation.
Cycles backoff_delay(const HostDriverConfig& config, std::uint64_t stream,
                     int attempt);

class HostDriver {
 public:
  HostDriver(HostMemory* host, PcieEngine* pcie, HostDriverConfig config = {});

  /// Enables timeout/retry: timers are scheduled on `sim`, and the
  /// driver's counters are published under "host_driver.*".  Hooks the
  /// PCIe engine's TX-launch callback.
  void attach(Simulator& sim);

  /// Posts one TX frame on Ethernet port `port` and rings the doorbell.
  /// Returns the descriptor address (useful for tests).
  std::uint64_t post_tx(std::span<const std::uint8_t> frame,
                        std::uint16_t port, Cycle now,
                        std::uint16_t tenant = 0);

  std::uint64_t frames_posted() const { return posted_; }
  /// Launch-confirmed frames (only counted once attached).
  std::uint64_t frames_completed() const { return completed_; }
  std::uint64_t retries() const { return retries_; }
  /// Frames abandoned after max_retries timeouts.
  std::uint64_t frames_failed() const { return failed_; }
  std::size_t pending() const { return pending_.size(); }

 private:
  void on_launched(std::uint64_t desc_addr);
  void arm_timeout(std::uint64_t desc_addr);

  HostMemory* host_;
  PcieEngine* pcie_;
  HostDriverConfig config_;
  Simulator* sim_ = nullptr;

  struct Pending {
    int attempts = 0;  ///< doorbell rings so far for this descriptor
  };
  std::unordered_map<std::uint64_t, Pending> pending_;

  std::uint64_t posted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace panic::engines
