#include "engines/rate_limiter_engine.h"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.h"

namespace panic::engines {

RateLimiterEngine::RateLimiterEngine(std::string name,
                                     noc::NetworkInterface* ni,
                                     const EngineConfig& config,
                                     const RateLimiterConfig& limiter)
    : Engine(std::move(name), ni, config), limiter_(limiter) {}

void RateLimiterEngine::set_tenant_rate(TenantId tenant,
                                        double bytes_per_cycle,
                                        double burst_bytes) {
  Bucket bucket;
  bucket.rate = bytes_per_cycle;
  bucket.burst = burst_bytes;
  bucket.tokens = burst_bytes;  // start full
  buckets_[tenant.value] = bucket;
}

RateLimiterEngine::Bucket& RateLimiterEngine::bucket_for(TenantId tenant) {
  const auto it = buckets_.find(tenant.value);
  if (it != buckets_.end()) return it->second;
  Bucket bucket;
  bucket.rate = limiter_.default_rate_bytes_per_cycle;
  bucket.burst = limiter_.default_burst_bytes;
  bucket.tokens = bucket.burst;
  return buckets_.emplace(tenant.value, bucket).first->second;
}

void RateLimiterEngine::refill(Bucket& bucket, Cycle now) const {
  if (now > bucket.updated_at) {
    bucket.tokens = std::min(
        bucket.burst, bucket.tokens + bucket.rate *
                                          static_cast<double>(
                                              now - bucket.updated_at));
    bucket.updated_at = now;
  }
}

Cycles RateLimiterEngine::service_time(const Message& msg) const {
  // Shaping delay is computed in process(); the base service models the
  // bucket lookup.  pending_delay_ carries the shaping wait computed for
  // the *previous* start, consumed here.
  (void)msg;
  const Cycles delay = pending_delay_;
  pending_delay_ = 0;
  return limiter_.lookup_cycles + delay;
}

bool RateLimiterEngine::process(Message& msg, Cycle now) {
  if (msg.kind != MessageKind::kPacket) return true;
  Bucket& bucket = bucket_for(msg.tenant);
  refill(bucket, now);

  const auto cost = static_cast<double>(msg.data.size());
  if (bucket.tokens >= cost) {
    bucket.tokens -= cost;
    ++passed_;
    return true;
  }

  if (limiter_.mode == LimiterMode::kPolice) {
    ++policed_;
    return false;  // dropped
  }

  // Shape: charge the bucket (going negative) and delay the NEXT message
  // start by the time those tokens take to accrue.  Single-server engines
  // serialize per-tenant traffic through this wait, enforcing the rate.
  const double deficit = cost - bucket.tokens;
  bucket.tokens = 0;
  const auto wait =
      static_cast<Cycles>(std::ceil(deficit / std::max(bucket.rate, 1e-9)));
  bucket.updated_at = now + wait;  // tokens at 'now + wait' are spent
  pending_delay_ = wait;
  shaped_cycles_ += wait;
  ++passed_;
  return true;
}

void RateLimiterEngine::register_telemetry(telemetry::Telemetry& t) {
  Engine::register_telemetry(t);
  auto& m = t.metrics();
  m.expose_counter(metric_prefix() + "passed", &passed_);
  m.expose_counter(metric_prefix() + "policed", &policed_);
  m.expose_counter(metric_prefix() + "shaped_cycles", &shaped_cycles_);
}

}  // namespace panic::engines
