// Compiled integer expressions over named variables — the expression
// language shared by p4lite RMT actions (set_expr) and the scheduler's
// rank programs (src/engines/rank_program).
//
// Values are uint64 with TOTAL semantics so any well-formed expression is
// safe to evaluate on any input (the fuzz generator emits random rank
// programs): x/0 == 0, x%0 == 0, shift counts are masked to 6 bits,
// add/sub/mul wrap mod 2^64.  Comparisons and logical ops yield 0/1.
//
// Grammar (C precedence):  ?:  ||  &&  |  ^  &  == !=  < <= > >=  << >>
// + -  * / %  unary ! ~ -  and primaries: numbers (42, 0x1F, dotted
// quads), variables, min(a,b), max(a,b), parentheses.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lang/lexer.h"

namespace panic::lang {

/// Maps a variable name to its slot in the caller's value array; nullopt
/// rejects the name (the parser reports "unknown variable").
using VarResolver =
    std::function<std::optional<std::uint32_t>(std::string_view)>;

class Expr {
 public:
  /// Compiles `src` as one complete expression (trailing tokens are an
  /// error).  On failure returns nullopt and sets *error to a bare
  /// reason — callers that know the line prepend "line N: ".
  static std::optional<Expr> compile(std::string_view src,
                                     const VarResolver& resolver,
                                     std::string* error);

  /// Parses one expression from an in-progress token cursor, stopping at
  /// the first token that cannot extend it (')', ',', ';', ...).  This is
  /// how p4lite embeds expressions mid-program.
  static std::optional<Expr> parse(Cursor& cur, const VarResolver& resolver,
                                   std::string* error);

  /// Evaluates against `vars`, indexed by the resolver's slot numbers.
  /// Only slots listed in reads() are accessed.
  std::uint64_t eval(const std::uint64_t* vars) const;

  /// Slots referenced, sorted and deduplicated (flow-cache key masks,
  /// scratch sizing).
  const std::vector<std::uint32_t>& reads() const { return reads_; }

  /// True when the expression is exactly one variable / one constant —
  /// the scheduler compiles those to allocation-free fast paths.
  bool is_var(std::uint32_t* slot) const;
  bool is_const(std::uint64_t* value) const;

 private:
  enum class Op : std::uint8_t {
    kConst, kVar,
    kAdd, kSub, kMul, kDiv, kMod,
    kAnd, kOr, kXor, kShl, kShr,
    kLt, kLe, kGt, kGe, kEq, kNe,
    kLAnd, kLOr,
    kNot, kBitNot, kNeg,
    kMin, kMax, kSelect,
  };
  struct Ins {
    Op op;
    std::uint64_t arg = 0;  // kConst: value; kVar: slot
  };
  friend class ExprParser;

  std::vector<Ins> code_;            // postfix program
  std::vector<std::uint32_t> reads_;  // sorted unique var slots
};

}  // namespace panic::lang
