#include "lang/lexer.h"

#include <cctype>

namespace panic::lang {

void Lexer::skip_ws() {
  while (pos_ < src_.size()) {
    const char c = src_[pos_];
    if (c == '\n') {
      ++line_;
      ++pos_;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos_;
    } else if (c == '#' ||
               (c == '/' && pos_ + 1 < src_.size() &&
                src_[pos_ + 1] == '/')) {
      while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    } else {
      break;
    }
  }
}

Token Lexer::lex_number() {
  Token t;
  t.line = line_;
  t.kind = TokKind::kNumber;
  const std::size_t start = pos_;
  // Dotted quad?  Exactly three dots with digits between reads as an IPv4
  // address literal (p4lite table keys).
  std::size_t probe = pos_;
  int dots = 0;
  while (probe < src_.size() &&
         (std::isdigit(static_cast<unsigned char>(src_[probe])) ||
          src_[probe] == '.')) {
    if (src_[probe] == '.') ++dots;
    ++probe;
  }
  if (dots == 3) {
    std::uint64_t value = 0;
    std::uint64_t octet = 0;
    for (; pos_ < probe; ++pos_) {
      if (src_[pos_] == '.') {
        value = (value << 8) | octet;
        octet = 0;
      } else {
        octet = octet * 10 + static_cast<std::uint64_t>(src_[pos_] - '0');
      }
    }
    t.value = (value << 8) | octet;
    t.text = std::string(src_.substr(start, pos_ - start));
    return t;
  }
  if (src_[pos_] == '0' && pos_ + 1 < src_.size() &&
      (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
    pos_ += 2;
    std::uint64_t value = 0;
    while (pos_ < src_.size() &&
           std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
      const char d = src_[pos_++];
      value = value * 16 +
              static_cast<std::uint64_t>(
                  d <= '9' ? d - '0' : (d | 0x20) - 'a' + 10);
    }
    t.value = value;
    t.text = std::string(src_.substr(start, pos_ - start));
    return t;
  }
  std::uint64_t value = 0;
  while (pos_ < src_.size() &&
         std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
    value = value * 10 + static_cast<std::uint64_t>(src_[pos_++] - '0');
  }
  t.value = value;
  t.text = std::string(src_.substr(start, pos_ - start));
  return t;
}

Token Lexer::lex_ident() {
  Token t;
  t.line = line_;
  t.kind = TokKind::kIdent;
  const std::size_t start = pos_;
  while (pos_ < src_.size() &&
         (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
          src_[pos_] == '_' || src_[pos_] == '.')) {
    ++pos_;
  }
  t.text = std::string(src_.substr(start, pos_ - start));
  return t;
}

Token Lexer::next() {
  skip_ws();
  Token t;
  t.line = line_;
  if (pos_ >= src_.size()) {
    t.kind = TokKind::kEnd;
    return t;
  }
  const char c = src_[pos_];
  auto two = [&](char second) {
    return pos_ + 1 < src_.size() && src_[pos_ + 1] == second;
  };
  auto one = [&](TokKind k, const char* text) {
    ++pos_;
    t.kind = k;
    t.text = text;
    return t;
  };
  auto pair = [&](TokKind k, const char* text) {
    pos_ += 2;
    t.kind = k;
    t.text = text;
    return t;
  };
  switch (c) {
    case '{': return one(TokKind::kLBrace, "{");
    case '}': return one(TokKind::kRBrace, "}");
    case '(': return one(TokKind::kLParen, "(");
    case ')': return one(TokKind::kRParen, ")");
    case ',': return one(TokKind::kComma, ",");
    case ';': return one(TokKind::kSemi, ";");
    case '+': return one(TokKind::kPlus, "+");
    case '*': return one(TokKind::kStar, "*");
    case '%': return one(TokKind::kPercent, "%");
    case '^': return one(TokKind::kCaret, "^");
    case '~': return one(TokKind::kTilde, "~");
    case '?': return one(TokKind::kQuestion, "?");
    case ':': return one(TokKind::kColon, ":");
    case '-':
      if (two('>')) return pair(TokKind::kArrow, "->");
      return one(TokKind::kMinus, "-");
    case '/':
      // '//' comments were consumed by skip_ws; a lone slash is p4lite's
      // value/mask separator and lang::Expr's division.
      return one(TokKind::kSlash, "/");
    case '&':
      if (two('&')) return pair(TokKind::kAndAnd, "&&");
      return one(TokKind::kAmp, "&");
    case '|':
      if (two('|')) return pair(TokKind::kOrOr, "||");
      return one(TokKind::kPipe, "|");
    case '<':
      if (two('<')) return pair(TokKind::kShl, "<<");
      if (two('=')) return pair(TokKind::kLe, "<=");
      return one(TokKind::kLt, "<");
    case '>':
      if (two('>')) return pair(TokKind::kShr, ">>");
      if (two('=')) return pair(TokKind::kGe, ">=");
      return one(TokKind::kGt, ">");
    case '=':
      if (two('=')) return pair(TokKind::kEqEq, "==");
      return one(TokKind::kAssign, "=");
    case '!':
      if (two('=')) return pair(TokKind::kNe, "!=");
      return one(TokKind::kBang, "!");
    default:
      break;
  }
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    return lex_ident();
  }
  ++pos_;
  t.kind = TokKind::kError;
  t.text = std::string(1, c);
  return t;
}

}  // namespace panic::lang
