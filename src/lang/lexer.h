// Shared lexer for the NIC's little languages (§3.1.1, §3.1.3).
//
// Extracted from the p4lite RMT compiler so the scheduler's rank-program
// compiler (src/engines/rank_program) and p4lite expressions share one
// token stream: identifiers with dots (ipv4.dst, flow.finish), decimal /
// hex / dotted-quad numbers, '#' and '//' comments, and the full C-like
// operator set used by lang::Expr.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace panic::lang {

enum class TokKind : std::uint8_t {
  kIdent,   // identifiers and dotted names: stage, ipv4.dst, flow.finish
  kNumber,  // 42, 0x1F, 10.0.0.1 (dotted quad)
  kArrow,   // ->
  kLBrace, kRBrace, kLParen, kRParen,
  kComma, kSemi,
  kAssign,    // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,           // << >>
  kLt, kLe, kGt, kGe,   // < <= > >=
  kEqEq, kNe,           // == !=
  kAndAnd, kOrOr,       // && ||
  kQuestion, kColon,    // ? :
  kEnd,    // end of input
  kError,  // unlexable character (text holds it)
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;
  std::uint64_t value = 0;  // for kNumber
  int line = 0;             // 1-based
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Token next();

 private:
  void skip_ws();
  Token lex_number();
  Token lex_ident();

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// A one-token-lookahead cursor over a Lexer — the shape both the p4lite
/// compiler and the expression parser consume.
struct Cursor {
  explicit Cursor(std::string_view src) : lexer(src) { advance(); }
  void advance() { cur = lexer.next(); }

  Lexer lexer;
  Token cur;
};

}  // namespace panic::lang
