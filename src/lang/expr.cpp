#include "lang/expr.h"

#include <algorithm>

namespace panic::lang {

namespace {

/// Hard bound on evaluation stack depth; the compiler tracks the exact
/// high-water mark and rejects anything deeper, so eval() can use a fixed
/// stack with no overflow check.
constexpr std::size_t kMaxStack = 64;

}  // namespace

class ExprParser {
 public:
  ExprParser(Cursor& cur, const VarResolver& resolver, std::string* error)
      : cur_(cur), resolver_(resolver), error_(error) {}

  bool parse_into(Expr& out) {
    if (!parse_ternary(out)) return false;
    if (depth_ != 1) return fail("malformed expression");
    std::sort(out.reads_.begin(), out.reads_.end());
    out.reads_.erase(std::unique(out.reads_.begin(), out.reads_.end()),
                     out.reads_.end());
    return true;
  }

 private:
  using Op = Expr::Op;

  bool fail(const std::string& reason) {
    if (error_ != nullptr && error_->empty()) *error_ = reason;
    return false;
  }

  bool emit(Expr& out, Op op, std::uint64_t arg, int delta) {
    out.code_.push_back({op, arg});
    depth_ += delta;
    if (depth_ > static_cast<int>(kMaxStack)) {
      return fail("expression too deep");
    }
    max_depth_ = std::max(max_depth_, depth_);
    return true;
  }

  // precedence climbing, lowest first -----------------------------------

  bool parse_ternary(Expr& out) {
    if (!parse_binary(out, /*min_prec=*/0)) return false;
    if (cur_.cur.kind != TokKind::kQuestion) return true;
    cur_.advance();
    if (!parse_ternary(out)) return false;
    if (cur_.cur.kind != TokKind::kColon) {
      return fail("expected ':' in '?:' expression");
    }
    cur_.advance();
    if (!parse_ternary(out)) return false;
    // Both arms evaluate (expressions are side-effect free); kSelect pops
    // else/then/cond and pushes the chosen arm.
    return emit(out, Op::kSelect, 0, -2);
  }

  /// Binary-operator table: token -> (opcode, precedence).  Higher binds
  /// tighter; all binary operators are left-associative.
  static bool binary_op(TokKind kind, Op* op, int* prec) {
    switch (kind) {
      case TokKind::kOrOr:    *op = Op::kLOr;  *prec = 1; return true;
      case TokKind::kAndAnd:  *op = Op::kLAnd; *prec = 2; return true;
      case TokKind::kPipe:    *op = Op::kOr;   *prec = 3; return true;
      case TokKind::kCaret:   *op = Op::kXor;  *prec = 4; return true;
      case TokKind::kAmp:     *op = Op::kAnd;  *prec = 5; return true;
      case TokKind::kEqEq:    *op = Op::kEq;   *prec = 6; return true;
      case TokKind::kNe:      *op = Op::kNe;   *prec = 6; return true;
      case TokKind::kLt:      *op = Op::kLt;   *prec = 7; return true;
      case TokKind::kLe:      *op = Op::kLe;   *prec = 7; return true;
      case TokKind::kGt:      *op = Op::kGt;   *prec = 7; return true;
      case TokKind::kGe:      *op = Op::kGe;   *prec = 7; return true;
      case TokKind::kShl:     *op = Op::kShl;  *prec = 8; return true;
      case TokKind::kShr:     *op = Op::kShr;  *prec = 8; return true;
      case TokKind::kPlus:    *op = Op::kAdd;  *prec = 9; return true;
      case TokKind::kMinus:   *op = Op::kSub;  *prec = 9; return true;
      case TokKind::kStar:    *op = Op::kMul;  *prec = 10; return true;
      case TokKind::kSlash:   *op = Op::kDiv;  *prec = 10; return true;
      case TokKind::kPercent: *op = Op::kMod;  *prec = 10; return true;
      default: return false;
    }
  }

  bool parse_binary(Expr& out, int min_prec) {
    if (!parse_unary(out)) return false;
    while (true) {
      Op op;
      int prec;
      if (!binary_op(cur_.cur.kind, &op, &prec) || prec < min_prec) {
        return true;
      }
      cur_.advance();
      if (!parse_binary(out, prec + 1)) return false;
      if (!emit(out, op, 0, -1)) return false;
    }
  }

  bool parse_unary(Expr& out) {
    if (cur_.cur.kind == TokKind::kBang) {
      cur_.advance();
      return parse_unary(out) && emit(out, Op::kNot, 0, 0);
    }
    if (cur_.cur.kind == TokKind::kTilde) {
      cur_.advance();
      return parse_unary(out) && emit(out, Op::kBitNot, 0, 0);
    }
    if (cur_.cur.kind == TokKind::kMinus) {
      cur_.advance();
      return parse_unary(out) && emit(out, Op::kNeg, 0, 0);
    }
    return parse_primary(out);
  }

  bool parse_primary(Expr& out) {
    const Token tok = cur_.cur;
    if (tok.kind == TokKind::kNumber) {
      cur_.advance();
      return emit(out, Op::kConst, tok.value, +1);
    }
    if (tok.kind == TokKind::kLParen) {
      cur_.advance();
      if (!parse_ternary(out)) return false;
      if (cur_.cur.kind != TokKind::kRParen) return fail("expected ')'");
      cur_.advance();
      return true;
    }
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "min" || tok.text == "max") {
        const Op op = tok.text == "min" ? Op::kMin : Op::kMax;
        cur_.advance();
        if (cur_.cur.kind != TokKind::kLParen) {
          return fail("expected '(' after '" + tok.text + "'");
        }
        cur_.advance();
        if (!parse_ternary(out)) return false;
        if (cur_.cur.kind != TokKind::kComma) {
          return fail(tok.text + " takes two arguments");
        }
        cur_.advance();
        if (!parse_ternary(out)) return false;
        if (cur_.cur.kind != TokKind::kRParen) return fail("expected ')'");
        cur_.advance();
        return emit(out, op, 0, -1);
      }
      const auto slot = resolver_ ? resolver_(tok.text)
                                  : std::optional<std::uint32_t>{};
      if (!slot.has_value()) {
        return fail("unknown variable '" + tok.text + "'");
      }
      cur_.advance();
      out.reads_.push_back(*slot);
      return emit(out, Op::kVar, *slot, +1);
    }
    if (tok.kind == TokKind::kError) {
      return fail("bad character '" + tok.text + "'");
    }
    if (tok.kind == TokKind::kEnd) return fail("expected expression");
    return fail("expected expression, got '" + tok.text + "'");
  }

  Cursor& cur_;
  const VarResolver& resolver_;
  std::string* error_;
  int depth_ = 0;
  int max_depth_ = 0;
};

std::optional<Expr> Expr::parse(Cursor& cur, const VarResolver& resolver,
                                std::string* error) {
  Expr e;
  ExprParser parser(cur, resolver, error);
  if (!parser.parse_into(e)) return std::nullopt;
  return e;
}

std::optional<Expr> Expr::compile(std::string_view src,
                                  const VarResolver& resolver,
                                  std::string* error) {
  Cursor cur(src);
  auto e = parse(cur, resolver, error);
  if (!e.has_value()) return std::nullopt;
  if (cur.cur.kind != TokKind::kEnd) {
    if (error != nullptr && error->empty()) {
      *error = "unexpected trailing token '" + cur.cur.text + "'";
    }
    return std::nullopt;
  }
  return e;
}

std::uint64_t Expr::eval(const std::uint64_t* vars) const {
  std::uint64_t stack[kMaxStack];
  std::size_t sp = 0;
  for (const Ins& ins : code_) {
    switch (ins.op) {
      case Op::kConst: stack[sp++] = ins.arg; break;
      case Op::kVar: stack[sp++] = vars[ins.arg]; break;
      case Op::kNot: stack[sp - 1] = stack[sp - 1] == 0 ? 1 : 0; break;
      case Op::kBitNot: stack[sp - 1] = ~stack[sp - 1]; break;
      case Op::kNeg:
        stack[sp - 1] = 0 - stack[sp - 1];
        break;
      case Op::kSelect: {
        const std::uint64_t e = stack[--sp];
        const std::uint64_t t = stack[--sp];
        stack[sp - 1] = stack[sp - 1] != 0 ? t : e;
        break;
      }
      default: {
        const std::uint64_t b = stack[--sp];
        std::uint64_t& a = stack[sp - 1];
        switch (ins.op) {
          case Op::kAdd: a = a + b; break;
          case Op::kSub: a = a - b; break;
          case Op::kMul: a = a * b; break;
          case Op::kDiv: a = b == 0 ? 0 : a / b; break;
          case Op::kMod: a = b == 0 ? 0 : a % b; break;
          case Op::kAnd: a = a & b; break;
          case Op::kOr: a = a | b; break;
          case Op::kXor: a = a ^ b; break;
          case Op::kShl: a = a << (b & 63); break;
          case Op::kShr: a = a >> (b & 63); break;
          case Op::kLt: a = a < b ? 1 : 0; break;
          case Op::kLe: a = a <= b ? 1 : 0; break;
          case Op::kGt: a = a > b ? 1 : 0; break;
          case Op::kGe: a = a >= b ? 1 : 0; break;
          case Op::kEq: a = a == b ? 1 : 0; break;
          case Op::kNe: a = a != b ? 1 : 0; break;
          case Op::kLAnd: a = (a != 0 && b != 0) ? 1 : 0; break;
          case Op::kLOr: a = (a != 0 || b != 0) ? 1 : 0; break;
          case Op::kMin: a = std::min(a, b); break;
          case Op::kMax: a = std::max(a, b); break;
          default: break;  // unary/select handled above
        }
      }
    }
  }
  return sp > 0 ? stack[sp - 1] : 0;
}

bool Expr::is_var(std::uint32_t* slot) const {
  if (code_.size() != 1 || code_[0].op != Op::kVar) return false;
  if (slot != nullptr) *slot = static_cast<std::uint32_t>(code_[0].arg);
  return true;
}

bool Expr::is_const(std::uint64_t* value) const {
  if (code_.size() != 1 || code_[0].op != Op::kConst) return false;
  if (value != nullptr) *value = code_[0].arg;
  return true;
}

}  // namespace panic::lang
