// Performance isolation with the logical scheduler (§3.1.3): an
// interactive tenant shares the NIC with a bulk tenant.  Run with FIFO
// scheduling to see the isolation anomaly, then with slack scheduling to
// see PANIC fix it.
//
//   $ ./build/examples/multi_tenant_isolation            # slack (default)
//   $ ./build/examples/multi_tenant_isolation policy=fifo
//
// The workloads live in multi_tenant_isolation.scenario; the policy=fifo
// switch just flips the loaded scenario's `sched` line.
#include <cstdio>

#include "common/cli.h"
#include "scenario/runner.h"

using namespace panic;

int main(int argc, char** argv) {
  cli::ArgParser args("multi_tenant_isolation",
                      "slack vs FIFO isolation under shared DMA");
  args.parse(argc, argv);
  const bool fifo = args.config().get_string("policy", "slack") == "fifo";

  std::string error;
  auto s = scenario::Scenario::load(
      PANIC_SCENARIO_DIR "/multi_tenant_isolation.scenario", &error);
  if (!s.has_value()) {
    std::fprintf(stderr, "cannot load multi_tenant_isolation.scenario: %s\n",
                 error.c_str());
    return 1;
  }
  if (fifo) s->sched_policy = engines::SchedPolicy::kFifo;

  scenario::RunOptions opts;
  opts.mode = args.sim_mode();
  opts.threads = args.threads();
  scenario::ScenarioRun run(*s, opts);
  run.run_all();

  const auto snap = run.sim().snapshot();
  const auto& t1 = snap.at("engine.dma.host_latency.tenant.1");
  const auto& t2 = snap.at("engine.dma.host_latency.tenant.2");
  std::printf("--- scheduling policy: %s ---\n", fifo ? "FIFO" : "slack");
  std::printf("interactive tenant (n=%llu): p50=%llu p99=%llu max=%llu cyc\n",
              static_cast<unsigned long long>(t1.count),
              static_cast<unsigned long long>(t1.p50),
              static_cast<unsigned long long>(t1.p99),
              static_cast<unsigned long long>(t1.max));
  std::printf("bulk tenant        (n=%llu): p50=%llu p99=%llu max=%llu cyc\n",
              static_cast<unsigned long long>(t2.count),
              static_cast<unsigned long long>(t2.p50),
              static_cast<unsigned long long>(t2.p99),
              static_cast<unsigned long long>(t2.max));
  std::printf("DMA queue: max depth %llu, drops %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.queue.max_depth")),
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.queue.dropped")));
  std::printf(
      "\n(1 cycle = 2 ns.  Compare both policies: slack keeps the\n"
      "interactive tenant's p99 near the unloaded DMA latency; FIFO\n"
      "queues it behind every in-flight bulk burst.)\n");
  return 0;
}
