// Performance isolation with the logical scheduler (§3.1.3): an
// interactive tenant shares the NIC with a bulk tenant.  Run with FIFO
// scheduling to see the isolation anomaly, then with slack scheduling to
// see PANIC fix it.
//
//   $ ./build/examples/multi_tenant_isolation            # slack (default)
//   $ ./build/examples/multi_tenant_isolation policy=fifo
#include <cstdio>

#include "common/config.h"
#include "common/rng.h"
#include "core/panic_nic.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;

int main(int argc, char** argv) {
  panic::apply_seed_args(argc, argv);
  panic::apply_thread_args(argc, argv);
  const Config args = Config::from_args(argc, argv);
  const bool fifo = args.get_string("policy", "slack") == "fifo";

  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig config;
  config.mesh.k = 4;
  config.sched_policy = fifo ? engines::SchedPolicy::kFifo
                             : engines::SchedPolicy::kSlackPriority;
  // Interactive tenant 1 gets tight slack; bulk tenant 2 gets loose slack.
  config.tenant_slacks = {{1, 10}, {2, 100000}};
  config.dma.contention_mean = 150.0;  // variable DMA performance (§3.2)
  core::PanicNic nic(config, sim);

  const Ipv4Addr interactive_client(10, 1, 0, 2);
  const Ipv4Addr bulk_client(10, 2, 0, 9);
  const Ipv4Addr server(10, 0, 0, 1);

  // Bulk tenant: bursts of 1500B frames.
  workload::TrafficConfig bulk_traffic;
  bulk_traffic.pattern = workload::ArrivalPattern::kOnOff;
  bulk_traffic.mean_gap_cycles = 15.0;
  bulk_traffic.on_cycles = 20000;
  bulk_traffic.off_cycles = 10000;
  bulk_traffic.tenant = TenantId{2};
  workload::TrafficSource bulk(
      "bulk", &nic.eth_port(1),
      workload::make_udp_factory(bulk_client, server, 1500), bulk_traffic);
  sim.add(&bulk);

  // Interactive tenant: sparse small requests.
  workload::TrafficConfig inter_traffic;
  inter_traffic.pattern = workload::ArrivalPattern::kPoisson;
  inter_traffic.mean_gap_cycles = 2500.0;
  inter_traffic.tenant = TenantId{1};
  workload::TrafficSource interactive(
      "interactive", &nic.eth_port(0),
      workload::make_min_frame_factory(interactive_client, server),
      inter_traffic);
  sim.add(&interactive);

  sim.run(500000);  // 1 ms at 500 MHz

  const auto snap = sim.snapshot();
  const auto& t1 = snap.at("engine.dma.host_latency.tenant.1");
  const auto& t2 = snap.at("engine.dma.host_latency.tenant.2");
  std::printf("--- scheduling policy: %s ---\n", fifo ? "FIFO" : "slack");
  std::printf("interactive tenant (n=%llu): p50=%llu p99=%llu max=%llu cyc\n",
              static_cast<unsigned long long>(t1.count),
              static_cast<unsigned long long>(t1.p50),
              static_cast<unsigned long long>(t1.p99),
              static_cast<unsigned long long>(t1.max));
  std::printf("bulk tenant        (n=%llu): p50=%llu p99=%llu max=%llu cyc\n",
              static_cast<unsigned long long>(t2.count),
              static_cast<unsigned long long>(t2.p50),
              static_cast<unsigned long long>(t2.p99),
              static_cast<unsigned long long>(t2.max));
  std::printf("DMA queue: max depth %llu, drops %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.queue.max_depth")),
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.queue.dropped")));
  std::printf(
      "\n(1 cycle = 2 ns.  Compare both policies: slack keeps the\n"
      "interactive tenant's p99 near the unloaded DMA latency; FIFO\n"
      "queues it behind every in-flight bulk burst.)\n");
  return 0;
}
