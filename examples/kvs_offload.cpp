// The paper's motivating application (§2.2, §3.2): a multi-tenant,
// geo-distributed key-value store whose hot keys are served from the NIC.
//
// Scenario: two tenants issue Zipf-distributed GETs.  Hot keys hit the
// on-NIC location cache and are answered via RDMA + DMA reads with the
// host CPU bypassed; cold keys are steered to host receive queues.  WAN
// clients' replies leave encrypted.
#include <cstdio>

#include "common/cli.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;

int main(int argc, char** argv) {
  panic::cli::ArgParser args("kvs_offload", "KVS GET/SET offload walkthrough");
  args.parse(argc, argv);
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig config;
  config.mesh.k = 4;
  config.kvs_capacity = 1024;
  config.tenant_slacks = {{1, 10}, {2, 1000}};  // tenant 1 is interactive
  core::PanicNic nic(config, sim);

  const Ipv4Addr lan_client(10, 1, 0, 2);
  const Ipv4Addr wan_client(203, 0, 113, 7);  // in the WAN prefix
  const Ipv4Addr server(10, 0, 0, 1);

  std::uint64_t replies = 0, encrypted_replies = 0;
  Histogram reply_latency;
  for (int p = 0; p < nic.num_eth_ports(); ++p) {
    nic.eth_port(p).set_tx_sink([&](const Message& msg, Cycle now) {
      ++replies;
      const auto parsed = parse_frame(msg.data);
      if (parsed && parsed->esp) ++encrypted_replies;
      if (now >= msg.nic_ingress_at) {
        reply_latency.record(now - msg.nic_ingress_at);
      }
    });
  }

  // Warm the cache: install the 1024 hottest keys (coldest first so the
  // LRU keeps the hottest at the end).
  std::printf("warming location cache with 1024 hot keys...\n");
  for (std::uint64_t i = 0; i < 1024; ++i) {
    nic.inject_rx(0,
                  frames::kvs_set(lan_client, server, 1, 1023 - i,
                                  static_cast<std::uint32_t>(i), 128),
                  sim.now());
    sim.run(150);
  }
  const auto& kvs_sets =
      sim.telemetry().metrics().counter("engine.kvs.sets");
  sim.run_until([&] { return kvs_sets >= 1024; }, 1000000);

  // Tenant 1: LAN clients, interactive GETs on port 0.
  workload::KvsWorkloadConfig lan;
  lan.client = lan_client;
  lan.server = server;
  lan.tenant = 1;
  lan.num_keys = 8192;
  lan.zipf_skew = 0.99;
  lan.get_fraction = 1.0;
  workload::TrafficConfig lan_traffic;
  lan_traffic.pattern = workload::ArrivalPattern::kPoisson;
  lan_traffic.mean_gap_cycles = 400.0;
  lan_traffic.max_frames = 3000;
  workload::TrafficSource lan_src("lan", &nic.eth_port(0),
                                  workload::make_kvs_factory(lan),
                                  lan_traffic);
  sim.add(&lan_src);

  // Tenant 2: WAN clients on port 1 — same store, replies must encrypt.
  workload::KvsWorkloadConfig wan = lan;
  wan.client = wan_client;
  wan.tenant = 2;
  workload::TrafficConfig wan_traffic = lan_traffic;
  wan_traffic.mean_gap_cycles = 800.0;
  wan_traffic.max_frames = 1500;
  wan_traffic.seed = 2;
  workload::TrafficSource wan_src("wan", &nic.eth_port(1),
                                  workload::make_kvs_factory(wan),
                                  wan_traffic);
  sim.add(&wan_src);

  const auto host_before =
      sim.snapshot().counter("engine.dma.packets_to_host");
  sim.run(3000 * 400 + 200000);

  const auto snap = sim.snapshot();
  const auto hits = snap.counter("engine.kvs.hits");
  const auto gets = hits + snap.counter("engine.kvs.misses");
  std::printf("\n--- results after %.1f us simulated ---\n",
              sim.now_ns() / 1000.0);
  std::printf("GETs processed by cache engine: %llu\n",
              static_cast<unsigned long long>(gets));
  std::printf("cache hit rate:                 %.1f%%\n",
              100.0 * static_cast<double>(hits) /
                  static_cast<double>(gets ? gets : 1));
  std::printf("replies served from NIC:        %llu (%llu encrypted)\n",
              static_cast<unsigned long long>(replies),
              static_cast<unsigned long long>(encrypted_replies));
  std::printf("misses steered to host:         %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.packets_to_host") - host_before));
  std::printf("reply latency (cycles @500MHz): %s\n",
              reply_latency.summary().c_str());
  std::printf("RMT passes total:               %.0f\n",
              snap.value("nic.rmt_passes"));
  return 0;
}
