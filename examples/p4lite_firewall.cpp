// Programming the logical switch from text (§4.1): extend the stock PANIC
// program with a P4-lite ACL + DPI policy, compiled at startup.
//
// Policy: drop packets to port 666 at the pipeline; steer traffic to port
// 8080 through the regex/DPI engine before the host; everything else
// follows the default program.
#include <cstdio>

#include "common/cli.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "rmt/p4lite.h"

using namespace panic;

int main(int argc, char** argv) {
  panic::cli::ArgParser args("p4lite_firewall", "p4lite-programmed firewall stages");
  args.parse(argc, argv);
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig config;
  config.mesh.k = 4;

  // Compile the extra stages against the engine names of this NIC's
  // topology.
  config.customize_program = [](rmt::RmtProgram& program,
                                const core::PanicTopology& topo) {
    const rmt::SymbolTable symbols = {
        {"dma", topo.dma.value},
        {"regex", topo.regex.value},
    };
    const char* policy = R"(
      stage acl {
        table deny exact(l4.dport) {
          666 -> clear_chain, drop;
        }
      }
      stage dpi {
        table inspect exact(l4.dport) {
          8080 -> clear_chain, chain(regex, dma);
        }
      }
    )";
    std::string error;
    if (!rmt::append_p4lite_stages(program, policy, symbols, &error)) {
      std::fprintf(stderr, "policy compile failed: %s\n", error.c_str());
      std::exit(1);
    }
  };

  core::PanicNic nic(config, sim);
  nic.regex().add_pattern("(UNION|union) +(SELECT|select)");

  const Ipv4Addr client(10, 1, 0, 2);
  const Ipv4Addr server(10, 0, 0, 1);

  // 1. Blocked port.
  nic.inject_rx(0, frames::min_udp(client, server, 1234, 666), sim.now());
  // 2. Clean web traffic to the inspected port.
  nic.inject_rx(0,
                FrameBuilder()
                    .eth(*MacAddr::parse("02:00:00:00:00:01"),
                         *MacAddr::parse("02:00:00:00:00:02"))
                    .ipv4(client, server)
                    .udp(40000, 8080)
                    .payload_size(100)
                    .build(),
                sim.now());
  // 3. SQL injection to the inspected port.
  const std::string evil = "id=1 UNION  SELECT password FROM users";
  nic.inject_rx(0,
                FrameBuilder()
                    .eth(*MacAddr::parse("02:00:00:00:00:01"),
                         *MacAddr::parse("02:00:00:00:00:02"))
                    .ipv4(client, server)
                    .udp(40001, 8080)
                    .payload(std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(evil.data()),
                        evil.size()))
                    .build(),
                sim.now());
  // 4. Ordinary traffic: untouched by the policy.
  nic.inject_rx(0, frames::min_udp(client, server, 1234, 80), sim.now());

  sim.run(20000);

  const auto snap = sim.snapshot();
  std::printf("--- P4-lite firewall results ---\n");
  std::printf("dropped at the pipeline (ACL):   %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("rmt.rmt0.dropped") +
                  snap.counter("rmt.rmt1.dropped")));
  std::printf("scanned by the DPI engine:       %llu (matched: %llu)\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.regex.scanned")),
              static_cast<unsigned long long>(
                  snap.counter("engine.regex.matched")));
  std::printf("delivered to host:               %llu of 4 injected\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.packets_to_host")));
  return 0;
}
