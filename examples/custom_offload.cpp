// Writing your own offload engine.
//
// PANIC's pitch (§3.1.1) is that ANY self-contained unit can be a tile:
// implement `Engine::service_time` + `Engine::process`, place it on the
// mesh, and steer traffic to it with one RMT table entry.  This example
// adds a flow-telemetry engine (per-flow packet/byte counters with a
// top-talker report) — something an RMT pipeline alone could not host at
// this fidelity (unbounded state, hash-map probing).
#include <cstdio>

#include <unordered_map>

#include "common/cli.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;

namespace {

/// A custom offload: counts packets/bytes per (src, dst, dport) flow.
class TelemetryEngine : public engines::Engine {
 public:
  TelemetryEngine(std::string name, noc::NetworkInterface* ni,
                  const engines::EngineConfig& config)
      : Engine(std::move(name), ni, config) {}

  struct FlowStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  const std::unordered_map<std::uint64_t, FlowStats>& flows() const {
    return flows_;
  }

 protected:
  Cycles service_time(const Message& msg) const override {
    (void)msg;
    return 4;  // hash + two counter updates
  }

  bool process(Message& msg, Cycle now) override {
    (void)now;
    if (const auto parsed = parse_frame(msg.data);
        parsed.has_value() && parsed->ipv4.has_value()) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(parsed->ipv4->src.value()) << 32) ^
          parsed->ipv4->dst.value() ^
          (parsed->udp ? parsed->udp->dst_port : 0);
      auto& stats = flows_[key];
      ++stats.packets;
      stats.bytes += msg.data.size();
    }
    return true;  // forward along the chain — telemetry is inline
  }

 private:
  std::unordered_map<std::uint64_t, FlowStats> flows_;
};

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("custom_offload", "attach a custom engine to a spare tile");
  args.parse(argc, argv);
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());

  core::PanicConfig config;
  config.mesh.k = 4;
  config.spare_tiles = 1;  // reserve a tile for our custom engine

  // Steer every host-bound packet through the telemetry tile first:
  // rewrite the default packet chain to [telemetry, dma].
  config.customize_program = [](rmt::RmtProgram& program,
                                const core::PanicTopology& topo) {
    auto& stage = program.add_stage("telemetry");
    rmt::MatchTable t("tap", rmt::MatchKind::kTernary,
                      {rmt::Field::kMetaMsgKind});
    t.add_ternary(0 /*kPacket*/, ~0ull, 1,
                  rmt::Action("tap")
                      .clear_chain()
                      .push_hop(topo.spare[0].value)
                      .push_hop(topo.dma.value));
    stage.tables.push_back(std::move(t));
  };

  // Build the NIC, then attach our engine to the reserved tile.
  core::PanicNic nic(config, sim);
  const EngineId telemetry_tile = nic.topology().spare[0];
  engines::EngineConfig ecfg;
  TelemetryEngine telemetry("telemetry",
                            &nic.mesh().ni(telemetry_tile), ecfg);
  telemetry.lookup_table().set_default(nic.topology().dma);
  sim.add(&telemetry);
  // Under --threads N the mesh is sharded; a custom engine must live on
  // the same shard as its tile's router/NI so their interactions never
  // cross a shard cut (a no-op in the sequential modes).
  sim.set_shard(&telemetry, nic.mesh().shard_of(telemetry_tile));

  // Traffic: three flows with different rates.
  const Ipv4Addr server(10, 0, 0, 1);
  std::vector<std::unique_ptr<workload::TrafficSource>> sources;
  int flow = 0;
  for (const auto& [octet, gap] :
       std::vector<std::pair<int, double>>{{2, 100.0}, {3, 300.0},
                                           {4, 1200.0}}) {
    workload::TrafficConfig tcfg;
    tcfg.mean_gap_cycles = gap;
    tcfg.max_frames = 0;
    tcfg.seed = static_cast<std::uint64_t>(octet);
    sources.push_back(std::make_unique<workload::TrafficSource>(
        "flow" + std::to_string(flow++), &nic.eth_port(0),
        workload::make_udp_factory(
            Ipv4Addr(10, 1, 0, static_cast<std::uint8_t>(octet)), server,
            256, static_cast<std::uint16_t>(7000 + octet)),
        tcfg));
    sim.add(sources.back().get());
  }

  sim.run(200000);

  std::printf("--- flow telemetry after %.0f us ---\n", sim.now_ns() / 1e3);
  std::printf("%-18s %10s %12s\n", "flow(hash)", "packets", "bytes");
  for (const auto& [key, stats] : telemetry.flows()) {
    std::printf("%016llx %10llu %12llu\n",
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(stats.packets),
                static_cast<unsigned long long>(stats.bytes));
  }
  // The custom engine registered itself under engine.telemetry.* simply by
  // being added to the simulator — no extra code in TelemetryEngine.
  const auto snap = sim.snapshot();
  std::printf("\npackets to host: %llu (all passed through telemetry)\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.packets_to_host")));
  std::printf("telemetry engine processed: %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.telemetry.processed")));
  return 0;
}
