// An IPSec gateway on the NIC: encrypted traffic arrives from the WAN, is
// decrypted by the IPSec engine, re-enters the RMT pipeline for its second
// pass (§3.1.2 — the chain of an encrypted packet cannot be known up
// front), and is steered like clear traffic.  Meanwhile clear LAN traffic
// flows past the crypto engine untouched — no head-of-line blocking.
#include <cstdio>

#include "common/rng.h"
#include "core/panic_nic.h"
#include "engines/ipsec_engine.h"
#include "net/packet.h"
#include "net/pcap_writer.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;

int main(int argc, char** argv) {
  panic::apply_seed_args(argc, argv);
  panic::apply_thread_args(argc, argv);
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig config;
  config.mesh.k = 4;
  core::PanicNic nic(config, sim);

  // Record transmitted frames for inspection with tcpdump/wireshark.
  PcapWriter pcap("ipsec_gateway_tx.pcap", sim.clock());
  nic.eth_port(0).set_tx_sink([&](const Message& msg, Cycle now) {
    pcap.write(msg.data, now);
  });

  const Ipv4Addr wan_peer(198, 51, 100, 9);
  const Ipv4Addr lan_client(10, 1, 0, 2);
  const Ipv4Addr server(10, 0, 0, 1);

  // Encrypted stream: ESP-encapsulated UDP from the WAN peer.
  std::uint32_t esp_seq = 1;
  auto esp_factory = [&](Rng&, std::uint64_t) {
    const auto inner =
        frames::min_udp(wan_peer, server, 50000, 8080);
    return engines::IpsecEngine::encapsulate(inner, /*spi=*/0x2001,
                                             esp_seq++);
  };
  workload::TrafficConfig esp_traffic;
  esp_traffic.pattern = workload::ArrivalPattern::kPoisson;
  esp_traffic.mean_gap_cycles = 500.0;
  esp_traffic.max_frames = 1000;
  workload::TrafficSource esp_src("wan", &nic.eth_port(0), esp_factory,
                                  esp_traffic);
  sim.add(&esp_src);

  // Clear LAN stream on the other port.
  workload::TrafficConfig lan_traffic;
  lan_traffic.mean_gap_cycles = 250.0;
  lan_traffic.max_frames = 2000;
  workload::TrafficSource lan_src(
      "lan", &nic.eth_port(1),
      workload::make_min_frame_factory(lan_client, server), lan_traffic);
  sim.add(&lan_src);

  sim.run(1000 * 500 + 100000);

  // Outbound direction: the host transmits clear frames to a WAN peer;
  // the NIC encrypts them on egress (TX descriptor path -> checksum ->
  // IPSec encrypt -> port 0).  These are what land in the pcap.
  const Ipv4Addr wan_dst(203, 0, 113, 80);  // inside the WAN prefix
  for (int i = 0; i < 5; ++i) {
    const auto tx_frame =
        FrameBuilder()
            .eth(*MacAddr::parse("02:00:00:00:00:02"),
                 *MacAddr::parse("02:00:00:00:00:01"))
            .ipv4(server, wan_dst)
            .udp(static_cast<std::uint16_t>(9000 + i), 4500)
            .payload_size(200)
            .build();
    nic.host_driver().post_tx(tx_frame, /*port=*/0, sim.now());
    sim.run(2000);
  }
  sim.run(50000);

  const auto snap = sim.snapshot();
  const auto rx_busy = snap.counter("engine.ipsec_rx.busy_cycles");
  const auto& lat = snap.at("engine.dma.host_latency");
  std::printf("--- IPSec gateway after %.1f us ---\n", sim.now_ns() / 1e3);
  std::printf("host TX frames encrypted:    %llu of %llu posted\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.ipsec_tx.encrypted")),
              static_cast<unsigned long long>(
                  nic.host_driver().frames_posted()));
  std::printf("ESP frames decrypted:        %llu (auth failures: %llu)\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.ipsec_rx.decrypted")),
              static_cast<unsigned long long>(
                  snap.counter("engine.ipsec_rx.auth_failures")));
  std::printf("packets delivered to host:   %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.packets_to_host")));
  std::printf("RMT passes:                  %.0f (= clear x1 + ESP x2)\n",
              snap.value("nic.rmt_passes"));
  std::printf("host-delivery latency:       n=%llu mean=%.1f p50=%llu "
              "p99=%llu cycles\n",
              static_cast<unsigned long long>(lat.count), lat.mean,
              static_cast<unsigned long long>(lat.p50),
              static_cast<unsigned long long>(lat.p99));
  std::printf("IPSec engine busy cycles:    %llu (%.1f%% utilization)\n",
              static_cast<unsigned long long>(rx_busy),
              100.0 * static_cast<double>(rx_busy) /
                  static_cast<double>(sim.now()));

  // A tampered packet is dropped by the engine, not delivered.
  auto evil = engines::IpsecEngine::encapsulate(
      frames::min_udp(wan_peer, server), 0x2001, esp_seq++);
  evil[evil.size() - 3] ^= 0xFF;
  const auto host_before = snap.counter("engine.dma.packets_to_host");
  nic.inject_rx(0, std::move(evil), sim.now());
  sim.run(20000);
  std::printf("\ntampered ESP frame: auth failures now %llu, host still %llu"
              " packets (dropped on the NIC)\n",
              static_cast<unsigned long long>(
                  sim.snapshot().counter("engine.ipsec_rx.auth_failures")),
              static_cast<unsigned long long>(host_before));
  std::printf("wrote %llu TX frames to ipsec_gateway_tx.pcap\n",
              static_cast<unsigned long long>(pcap.frames_written()));
  return 0;
}
