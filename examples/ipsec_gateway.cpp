// An IPSec gateway on the NIC: encrypted traffic arrives from the WAN, is
// decrypted by the IPSec engine, re-enters the RMT pipeline for its second
// pass (§3.1.2 — the chain of an encrypted packet cannot be known up
// front), and is steered like clear traffic.  Meanwhile clear LAN traffic
// flows past the crypto engine untouched — no head-of-line blocking.
//
// The whole plot — WAN ESP stream, clear LAN stream, five host TX frames
// encrypted on egress, one tampered ESP frame dropped by the
// authenticator — lives in ipsec_gateway.scenario; this wrapper adds the
// pcap recording and the narrated statistics.
#include <cstdio>

#include "common/cli.h"
#include "net/pcap_writer.h"
#include "scenario/runner.h"

using namespace panic;

int main(int argc, char** argv) {
  cli::ArgParser args("ipsec_gateway",
                      "ESP decrypt/encrypt gateway with clear LAN bypass");
  args.parse(argc, argv);

  std::string error;
  auto s = scenario::Scenario::load(
      PANIC_SCENARIO_DIR "/ipsec_gateway.scenario", &error);
  if (!s.has_value()) {
    std::fprintf(stderr, "cannot load ipsec_gateway.scenario: %s\n",
                 error.c_str());
    return 1;
  }

  scenario::RunOptions opts;
  opts.mode = args.sim_mode();
  opts.threads = args.threads();
  scenario::ScenarioRun run(*s, opts);
  Simulator& sim = run.sim();

  // Record transmitted frames for inspection with tcpdump/wireshark.
  PcapWriter pcap("ipsec_gateway_tx.pcap", sim.clock());
  run.nic().eth_port(0).set_tx_sink([&](const Message& msg, Cycle now) {
    pcap.write(msg.data, now);
  });

  run.run_all();

  const auto snap = sim.snapshot();
  const auto rx_busy = snap.counter("engine.ipsec_rx.busy_cycles");
  const auto& lat = snap.at("engine.dma.host_latency");
  std::printf("--- IPSec gateway after %.1f us ---\n", sim.now_ns() / 1e3);
  std::printf("host TX frames encrypted:    %llu of %llu posted\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.ipsec_tx.encrypted")),
              static_cast<unsigned long long>(
                  run.nic().host_driver().frames_posted()));
  std::printf("ESP frames decrypted:        %llu (auth failures: %llu)\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.ipsec_rx.decrypted")),
              static_cast<unsigned long long>(
                  snap.counter("engine.ipsec_rx.auth_failures")));
  std::printf("packets delivered to host:   %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.packets_to_host")));
  std::printf("RMT passes:                  %.0f (= clear x1 + ESP x2)\n",
              snap.value("nic.rmt_passes"));
  std::printf("host-delivery latency:       n=%llu mean=%.1f p50=%llu "
              "p99=%llu cycles\n",
              static_cast<unsigned long long>(lat.count), lat.mean,
              static_cast<unsigned long long>(lat.p50),
              static_cast<unsigned long long>(lat.p99));
  std::printf("IPSec engine busy cycles:    %llu (%.1f%% utilization)\n",
              static_cast<unsigned long long>(rx_busy),
              100.0 * static_cast<double>(rx_busy) /
                  static_cast<double>(sim.now()));
  std::printf("\ntampered ESP frame at cycle 660000: auth failures %llu,"
              " dropped on the NIC, never delivered\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.ipsec_rx.auth_failures")));
  std::printf("wrote %llu TX frames to ipsec_gateway_tx.pcap\n",
              static_cast<unsigned long long>(pcap.frames_written()));
  return 0;
}
