// Quickstart: build a PANIC NIC, push a few packets through it, and look
// at where they went.
//
//   $ ./build/examples/quickstart
//
// The traffic lives in quickstart.scenario — three frames into Ethernet
// port 0 — and runs through the shared scenario runner, so the identical
// simulation is also one `panic_run examples/quickstart.scenario` away.
// This wrapper only adds the narrated statistics printout and the TX-sink
// commentary.
#include <cstdio>

#include "common/cli.h"
#include "net/packet.h"
#include "scenario/runner.h"

using namespace panic;

int main(int argc, char** argv) {
  cli::ArgParser args("quickstart", "three frames through a 4x4-mesh NIC");
  args.parse(argc, argv);

  std::string error;
  auto s = scenario::Scenario::load(PANIC_SCENARIO_DIR "/quickstart.scenario",
                                    &error);
  if (!s.has_value()) {
    std::fprintf(stderr, "cannot load quickstart.scenario: %s\n",
                 error.c_str());
    return 1;
  }

  scenario::RunOptions opts;
  opts.mode = args.sim_mode();
  opts.threads = args.threads();
  // Opt-in per-message tracing: every RMT pass, NoC hop, queue event and
  // service window is recorded and exported for chrome://tracing.
  opts.trace_path = "quickstart.trace.json";
  scenario::ScenarioRun run(*s, opts);
  Simulator& sim = run.sim();

  // Watch transmitted frames (NIC-generated replies leave here).
  run.nic().eth_port(0).set_tx_sink([&](const Message& msg, Cycle now) {
    const auto parsed = parse_frame(msg.data);
    std::printf("[%6.0f ns] TX frame, %zu bytes%s\n",
                sim.clock().cycles_to_ns(now), msg.data.size(),
                parsed && parsed->kvs ? " (KVS reply)" : "");
  });

  run.run_all();

  // Every component published its counters into the simulator's metrics
  // registry; one snapshot() call reads them all by hierarchical name.
  const auto snap = sim.snapshot();
  std::printf("\n--- NIC statistics after %.0f ns ---\n", sim.now_ns());
  std::printf("RMT pipeline passes:        %.0f\n",
              snap.value("nic.rmt_passes"));
  std::printf("packets delivered to host:  %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.packets_to_host")));
  std::printf("KVS cache: %llu hit / %llu miss / %llu set\n",
              static_cast<unsigned long long>(snap.counter("engine.kvs.hits")),
              static_cast<unsigned long long>(
                  snap.counter("engine.kvs.misses")),
              static_cast<unsigned long long>(snap.counter("engine.kvs.sets")));
  std::printf("RDMA replies generated:     %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.rdma.replies_generated")));
  std::printf("interrupts: %llu delivered, %llu coalesced\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.pcie.interrupts_delivered")),
              static_cast<unsigned long long>(
                  snap.counter("engine.pcie.interrupts_coalesced")));
  const auto& lat = snap.at("engine.dma.host_latency");
  std::printf("host-delivery latency:      n=%llu mean=%.1f p50=%llu "
              "p99=%llu max=%llu cycles\n",
              static_cast<unsigned long long>(lat.count), lat.mean,
              static_cast<unsigned long long>(lat.p50),
              static_cast<unsigned long long>(lat.p99),
              static_cast<unsigned long long>(lat.max));

  // The timeline was written by run_all(): open chrome://tracing (or
  // ui.perfetto.dev) and load quickstart.trace.json to see each packet hop
  // engine to engine.
  std::printf("wrote quickstart.trace.json (%zu events)\n",
              sim.telemetry().tracer().events().size());
  return 0;
}
