// Quickstart: build a PANIC NIC, push a few packets through it, and look
// at where they went.
//
//   $ ./build/examples/quickstart
//
// What happens: three frames enter Ethernet port 0.  The heavyweight RMT
// pipeline parses each one and stamps a chain header; the mesh carries it
// to the engines on its chain; the DMA engine delivers host-bound traffic
// and raises (coalesced) interrupts via the PCIe engine.
#include <cstdio>

#include "common/rng.h"
#include "core/panic_nic.h"
#include "net/packet.h"

using namespace panic;

int main(int argc, char** argv) {
  panic::apply_seed_args(argc, argv);
  panic::apply_thread_args(argc, argv);
  // A 4x4-mesh NIC: 2x100G ports, 2 RMT engines, the full offload set.
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  // Opt-in per-message tracing: every RMT pass, NoC hop, queue event and
  // service window is recorded and exported below for chrome://tracing.
  sim.telemetry().tracer().enable();
  core::PanicConfig config;
  config.mesh.k = 4;
  config.mesh.channel_bits = 128;
  core::PanicNic nic(config, sim);

  const Ipv4Addr client(10, 1, 0, 2);
  const Ipv4Addr server(10, 0, 0, 1);

  // Watch transmitted frames (NIC-generated replies leave here).
  nic.eth_port(0).set_tx_sink([&](const Message& msg, Cycle now) {
    const auto parsed = parse_frame(msg.data);
    std::printf("[%6.0f ns] TX frame, %zu bytes%s\n", sim.clock().cycles_to_ns(now),
                msg.data.size(),
                parsed && parsed->kvs ? " (KVS reply)" : "");
  });

  // 1. A plain UDP packet -> host receive queue.
  nic.inject_rx(0, frames::min_udp(client, server), sim.now());

  // 2. A KVS SET installs a value (and continues to the host log).
  nic.inject_rx(0, frames::kvs_set(client, server, /*tenant=*/1, /*key=*/7,
                                   /*request_id=*/1, /*value_size=*/64),
                sim.now());

  // 3. A KVS GET for the same key: served entirely on the NIC (location
  //    cache -> RDMA -> DMA read -> reply out the wire).
  sim.run(2000);
  nic.inject_rx(0, frames::kvs_get(client, server, 1, 7, 2), sim.now());

  sim.run(5000);

  // Every component published its counters into the simulator's metrics
  // registry; one snapshot() call reads them all by hierarchical name.
  const auto snap = sim.snapshot();
  std::printf("\n--- NIC statistics after %.0f ns ---\n", sim.now_ns());
  std::printf("RMT pipeline passes:        %.0f\n",
              snap.value("nic.rmt_passes"));
  std::printf("packets delivered to host:  %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.dma.packets_to_host")));
  std::printf("KVS cache: %llu hit / %llu miss / %llu set\n",
              static_cast<unsigned long long>(snap.counter("engine.kvs.hits")),
              static_cast<unsigned long long>(
                  snap.counter("engine.kvs.misses")),
              static_cast<unsigned long long>(snap.counter("engine.kvs.sets")));
  std::printf("RDMA replies generated:     %llu\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.rdma.replies_generated")));
  std::printf("interrupts: %llu delivered, %llu coalesced\n",
              static_cast<unsigned long long>(
                  snap.counter("engine.pcie.interrupts_delivered")),
              static_cast<unsigned long long>(
                  snap.counter("engine.pcie.interrupts_coalesced")));
  const auto& lat = snap.at("engine.dma.host_latency");
  std::printf("host-delivery latency:      n=%llu mean=%.1f p50=%llu "
              "p99=%llu max=%llu cycles\n",
              static_cast<unsigned long long>(lat.count), lat.mean,
              static_cast<unsigned long long>(lat.p50),
              static_cast<unsigned long long>(lat.p99),
              static_cast<unsigned long long>(lat.max));

  // Dump the message timeline: open chrome://tracing (or ui.perfetto.dev)
  // and load quickstart.trace.json to see each packet hop engine to engine.
  if (sim.telemetry().tracer().write_chrome_json("quickstart.trace.json",
                                                 sim.clock())) {
    std::printf("wrote quickstart.trace.json (%zu events)\n",
                sim.telemetry().tracer().events().size());
  }
  return 0;
}
