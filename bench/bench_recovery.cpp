// Recovery-time objective gatekeeper: kill mid-run, revive, and gate the
// exit code on how fast the NIC comes back.
//
// The design point lives in bench_recovery.scenario: all traffic chains
// through aux0 (100-cycle offload), aux0 dies and heals through the
// equivalence group to aux1, then aux1 dies too — the group is empty and
// degraded-mode backpressure parks arrivals — then aux0 revives with a
// warmup window and the parked backlog drains.
//
// Acceptance gates (exit status):
//   * RTO: delivered rate back within kSteadyFraction of the pre-fault
//     steady rate inside kRtoWindow cycles of the steering rejoin;
//   * conservation: the ledger closes and nothing is left live at the
//     end (every parked message drained or was attributed);
//   * determinism: the scenario's result JSON is identical under the
//     dense, event-driven and parallel kernels (modulo the "runner"
//     line), fault.recovery.* metrics included.
//
// Results go to stdout and, machine-readable, to BENCH_recovery.json.
// `--smoke` is accepted for CI symmetry (the scenario is already
// CI-sized).
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "analysis/report.h"
#include "common/cli.h"
#include "fault/invariants.h"
#include "scenario/runner.h"

using namespace panic;
using namespace panic::analysis;

namespace {

constexpr double kSteadyFraction = 0.95;  // post-revival rate vs pre-fault
constexpr Cycles kRtoWindow = 20000;      // cycles after the steering rejoin
constexpr Cycles kSampleWindow = 2000;

bool g_smoke = false;

/// Result JSON minus the one line that legitimately differs per kernel.
std::string strip_runner(const std::string& json) {
  std::istringstream in(json);
  std::string out, line;
  while (std::getline(in, line)) {
    if (line.find("\"runner\"") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

struct RtoResult {
  double steady_rate = 0.0;      // delivered/cycle before the first kill
  double recovered_rate = 0.0;   // first post-revival window at/above gate
  Cycle recovered_after = 0;     // cycles from steering rejoin to that window
  bool rto_met = false;
  bool conserved = false;
  bool drained = false;  // nothing live at end of budget
  telemetry::MetricsSnapshot snapshot;
};

RtoResult measure(const scenario::Scenario& s, SimMode mode, int threads) {
  // The plan tells us where the incident windows are — the bench never
  // hard-codes cycles the scenario owns.
  Cycle first_kill = 0, rejoin = 0;
  for (const fault::FaultSpec& f : s.faults.faults()) {
    if (f.kind == fault::FaultKind::kEngineDeath &&
        (first_kill == 0 || f.at < first_kill)) {
      first_kill = f.at;
    }
    if (f.kind == fault::FaultKind::kEngineRevive) {
      rejoin = std::max(rejoin, f.at + f.warmup);
    }
  }
  if (first_kill == 0 || rejoin == 0) {
    std::fprintf(stderr, "scenario has no kill/revive pair to gate on\n");
    std::exit(EXIT_FAILURE);
  }

  fault::ConservationChecker ledger;
  scenario::RunOptions opts;
  opts.mode = mode;
  opts.threads = threads;
  scenario::ScenarioRun run(s, opts);
  auto& metrics = run.sim().telemetry().metrics();
  const auto& delivered = metrics.counter("engine.dma.packets_to_host");

  RtoResult r;
  // Pre-fault steady rate over the back two thirds of the clean window
  // (the front third is pipe-fill warmup).
  const Cycle r0_start = first_kill / 3;
  run.sim().run(r0_start);
  const std::uint64_t d0 = delivered;
  run.sim().run(first_kill - r0_start);
  const std::uint64_t d1 = delivered;
  r.steady_rate = static_cast<double>(d1 - d0) /
                  static_cast<double>(first_kill - r0_start);

  // Through the storm to the steering rejoin, then sample windows until
  // the delivered rate is back at the objective.
  run.sim().run(rejoin - first_kill);
  Cycle elapsed = 0;
  std::uint64_t prev = delivered;
  while (elapsed < kRtoWindow + 8 * kSampleWindow) {
    run.sim().run(kSampleWindow);
    elapsed += kSampleWindow;
    const std::uint64_t cur = delivered;
    const double rate = static_cast<double>(cur - prev) /
                        static_cast<double>(kSampleWindow);
    prev = cur;
    if (rate >= kSteadyFraction * r.steady_rate) {
      r.recovered_rate = rate;
      r.recovered_after = elapsed;
      r.rto_met = elapsed <= kRtoWindow;
      break;
    }
  }

  // Drain the rest of the budget so the ledger can close.
  const Cycle spent = rejoin + elapsed;
  if (s.budget_cycles > spent) run.sim().run(s.budget_cycles - spent);
  const auto delta = ledger.delta();
  r.conserved = ledger.verify_or_log();
  r.drained = delta.live == 0;
  r.snapshot = run.sim().snapshot();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_recovery",
                      "kill -> revive recovery-time objective gate");
  args.flag("smoke", "accepted for CI symmetry (scenario is CI-sized)",
            &g_smoke);
  args.parse(argc, argv);

  std::string error;
  const auto loaded = scenario::Scenario::load(
      PANIC_SCENARIO_DIR "/bench_recovery.scenario", &error);
  if (!loaded.has_value()) {
    std::fprintf(stderr, "cannot load bench_recovery.scenario: %s\n",
                 error.c_str());
    return 1;
  }
  // Round-trip: the design point must stay expressible as scenario text.
  const auto reparsed = scenario::Scenario::parse(loaded->to_string(), &error);
  if (!reparsed.has_value() ||
      reparsed->to_string() != loaded->to_string()) {
    std::fprintf(stderr, "scenario round-trip failed: %s\n", error.c_str());
    return 1;
  }
  const scenario::Scenario& s = *reparsed;

  std::printf("PANIC reproduction — recovery lifecycle objective\n");
  std::printf("aux0 dies (heals to aux1), aux1 dies (group empty, "
              "backpressure parks), aux0 revives; gate: rate back to "
              ">= %.0f%% of steady within %llu cycles of the rejoin.\n\n",
              kSteadyFraction * 100,
              static_cast<unsigned long long>(kRtoWindow));

  // --- Determinism leg: result JSON identical across all three kernels.
  std::string json_by_mode[3];
  const SimMode modes[3] = {SimMode::kStrictTick, SimMode::kEventDriven,
                            SimMode::kParallelShards};
  for (int i = 0; i < 3; ++i) {
    scenario::RunOptions opts;
    opts.mode = modes[i];
    scenario::ScenarioRun run(s, opts);
    run.run_all();
    json_by_mode[i] = strip_runner(run.result_json());
  }
  const bool identical = json_by_mode[0] == json_by_mode[1] &&
                         json_by_mode[0] == json_by_mode[2];

  // --- RTO measurement run under the requested kernel.
  const RtoResult r = measure(s, args.sim_mode(), args.threads());
  const auto& snap = r.snapshot;

  Report report({"Metric", "Value"});
  report.add_row({"steady rate (pkt/cyc)", strf("%.5f", r.steady_rate)});
  report.add_row({"recovered rate", strf("%.5f", r.recovered_rate)});
  report.add_row({"rejoin -> steady (cyc)",
                  r.recovered_rate > 0.0
                      ? strf("%llu",
                             (unsigned long long)r.recovered_after)
                      : std::string("never")});
  report.add_row({"incidents",
                  strf("%llu", (unsigned long long)snap.counter(
                                   "fault.recovery.incidents"))});
  report.add_row({"restored",
                  strf("%llu", (unsigned long long)snap.counter(
                                   "fault.recovery.restored"))});
  report.add_row({"degraded served",
                  strf("%llu", (unsigned long long)snap.counter(
                                   "fault.recovery.degraded_served"))});
  report.add_row({"parked (RMT+engines)",
                  strf("%.0f", snap.sum("", ".no_route_parked"))});
  report.add_row({"shed", strf("%.0f", snap.sum("", ".no_route_shed"))});
  report.print("Recovery lifecycle (bench_recovery.scenario)");

  bool ok = true;
  if (!r.rto_met) {
    std::fprintf(stderr,
                 "FAIL: rate not back to %.0f%% of steady within %llu "
                 "cycles of the rejoin\n",
                 kSteadyFraction * 100,
                 static_cast<unsigned long long>(kRtoWindow));
    ok = false;
  }
  if (!r.conserved || !r.drained) {
    std::fprintf(stderr,
                 "FAIL: ledger did not close after recovery "
                 "(conserved=%d drained=%d)\n",
                 r.conserved, r.drained);
    ok = false;
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: result JSON differs between kernels on the "
                 "kill->revive run\n");
    ok = false;
  }

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n  \"bench\": \"recovery\",\n  \"threads\": %d,\n"
      "  \"steady_rate\": %.6f,\n  \"recovered_rate\": %.6f,\n"
      "  \"rejoin_to_steady_cycles\": %llu,\n  \"rto_window\": %llu,\n"
      "  \"rto_met\": %s,\n  \"conserved\": %s,\n  \"drained\": %s,\n"
      "  \"kernels_identical\": %s,\n  \"incidents\": %llu,\n"
      "  \"restored\": %llu,\n  \"degraded_served\": %llu,\n"
      "  \"pass\": %s\n}\n",
      args.threads(), r.steady_rate, r.recovered_rate,
      static_cast<unsigned long long>(r.recovered_after),
      static_cast<unsigned long long>(kRtoWindow),
      r.rto_met ? "true" : "false", r.conserved ? "true" : "false",
      r.drained ? "true" : "false", identical ? "true" : "false",
      static_cast<unsigned long long>(
          snap.counter("fault.recovery.incidents")),
      static_cast<unsigned long long>(
          snap.counter("fault.recovery.restored")),
      static_cast<unsigned long long>(
          snap.counter("fault.recovery.degraded_served")),
      ok ? "true" : "false");
  if (std::FILE* f = std::fopen("BENCH_recovery.json", "w")) {
    std::fputs(json, f);
    std::fclose(f);
    std::printf("\nwrote BENCH_recovery.json\n");
  }

  std::printf("\nShape check: the empty-group window parks (not drops) "
              "arrivals, the revive drains the backlog within the RTO, "
              "and all three kernels agree bit-for-bit.\n");
  return ok ? 0 : 1;
}
