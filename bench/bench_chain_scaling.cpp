// E5 — offload-chain length vs sustainable throughput (§4.2, Table 3).
// Packets are chained through n pass-through engines before reaching the
// host.  Each chain hop is one more mesh traversal, so beyond a knee the
// on-chip network saturates and delivered throughput falls below offered.
// Wider channels (the paper's "Bit Width" column) push the knee out.
//
// Each design point is expressed as a Scenario — the same schema
// `panic_run` executes — built programmatically (the chain program is a
// p4lite `program` block parameterized by chain length) and run through
// ScenarioRun.  Every point is round-tripped through the scenario text
// format first, so the sweep doubles as a serialization check and any
// point can be dumped and re-run standalone with `panic_run`.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.h"
#include "common/cli.h"
#include "scenario/runner.h"

using namespace panic;
using namespace panic::analysis;

namespace {

struct RunResult {
  double delivered_ratio;
  std::uint64_t p99;
};

/// One design point of the sweep as a self-contained scenario.
scenario::Scenario make_point(std::uint32_t channel_bits, int chain_len,
                              double gap, std::uint64_t frames) {
  scenario::Scenario s;
  s.name = strf("chain_scaling_w%u_n%d", channel_bits, chain_len);
  s.mesh_k = 5;
  s.channel_bits = static_cast<int>(channel_bits);
  s.aux_engines = 8;
  s.aux_fixed_cycles = 1;  // pass-through: the NoC is the resource
  s.dma_base_latency = 2;  // fast host path so DMA never dominates
  s.dma_bytes_per_cycle = 256.0;
  // Fixed horizon: just enough to emit every frame plus a short drain.
  // A chain the mesh can sustain delivers ~everything inside it; an
  // unsustainable one leaves a backlog (and queue drops).
  s.budget_cycles =
      static_cast<Cycles>(gap * static_cast<double>(frames)) + 5000;

  scenario::WorkloadSpec w;
  w.name = "gen";
  w.port = 0;
  w.kind = scenario::WorkloadSpec::Kind::kMinFrame;
  w.pattern = workload::ArrivalPattern::kConstantRate;
  w.mean_gap_cycles = gap;
  w.max_frames = frames;
  s.workloads.push_back(w);

  // The chain program: every packet walks n pass-through aux engines,
  // then DMA.  aux<N>/dma resolve through the topology symbol table.
  std::string hops;
  for (int i = 0; i < chain_len; ++i) hops += strf("aux%d, ", i);
  s.program = strf(
      "stage chain {\n"
      "  table chain ternary(meta.msg_kind) {\n"
      "    0 prio 1 -> clear_chain, chain(%sdma);\n"
      "  }\n"
      "}\n",
      hops.c_str());
  return s;
}

RunResult run(const scenario::Scenario& s) {
  // Round-trip through the text format: the sweep's design points must be
  // expressible (and re-parseable) as ordinary scenario files.
  std::string error;
  const auto reparsed = scenario::Scenario::parse(s.to_string(), &error);
  if (!reparsed.has_value() || reparsed->to_string() != s.to_string()) {
    std::fprintf(stderr, "scenario round-trip failed for %s: %s\n",
                 s.name.c_str(), error.c_str());
    std::exit(EXIT_FAILURE);
  }

  scenario::RunOptions opts;
  opts.mode = requested_sim_mode();
  scenario::ScenarioRun run(*reparsed, opts);
  run.run_all();

  const auto snap = run.sim().snapshot();
  RunResult r;
  r.delivered_ratio =
      static_cast<double>(snap.counter("engine.dma.packets_to_host")) /
      static_cast<double>(s.workloads[0].max_frames);
  r.p99 = static_cast<std::uint64_t>(snap.at("engine.dma.host_latency").p99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_chain_scaling",
                             "latency/throughput vs offload-chain length");
  args.parse(argc, argv);
  std::printf(
      "PANIC reproduction — E5: chain length vs delivered throughput\n");
  const double gap = 12.0;  // ~83 Mpps offered at 500 MHz (~56 Gbps wire)
  const std::uint64_t frames = 4000;
  std::printf("Offered: one 64B frame every %.0f cycles; chain of n\n"
              "pass-through engines before the host.\n",
              gap);

  Report report({"Width", "Chain len", "Delivered/Offered", "p99 (cyc)"});
  for (std::uint32_t width : {64u, 128u}) {
    for (int n : {0, 1, 2, 3, 4, 6, 8}) {
      const auto r = run(make_point(width, n, gap, frames));
      report.add_row({strf("%u-bit", width), strf("%d", n),
                      strf("%.3f", r.delivered_ratio),
                      strf("%llu", static_cast<unsigned long long>(r.p99))});
    }
  }
  report.print("Delivered fraction vs chain length (k=5 mesh)");

  std::printf(
      "\nShape check (Table 3): the 64-bit mesh sustains only short chains\n"
      "at this rate before delivery collapses and p99 explodes; doubling\n"
      "the channel width roughly doubles the sustainable chain length.\n");
  return 0;
}
