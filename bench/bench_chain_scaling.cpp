// E5 — offload-chain length vs sustainable throughput (§4.2, Table 3).
// Packets are chained through n pass-through engines before reaching the
// host.  Each chain hop is one more mesh traversal, so beyond a knee the
// on-chip network saturates and delivered throughput falls below offered.
// Wider channels (the paper's "Bit Width" column) push the knee out.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;
using namespace panic::analysis;

namespace {

const Ipv4Addr kClient(10, 1, 0, 2);
const Ipv4Addr kServer(10, 0, 0, 1);

struct RunResult {
  double delivered_ratio;
  std::uint64_t p99;
};

RunResult run(std::uint32_t channel_bits, int chain_len, double gap,
              std::uint64_t frames) {
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig cfg;
  cfg.mesh.k = 5;
  cfg.mesh.channel_bits = channel_bits;
  cfg.aux_engines = 8;
  cfg.aux_fixed_cycles = 1;  // pass-through: the NoC is the resource
  cfg.dma.base_latency = 2;  // fast host path so DMA never dominates
  cfg.dma.bytes_per_cycle = 256.0;
  cfg.customize_program = [chain_len](rmt::RmtProgram& program,
                                      const core::PanicTopology& topo) {
    auto& stage = program.add_stage("chain");
    rmt::MatchTable t("chain", rmt::MatchKind::kTernary,
                      {rmt::Field::kMetaMsgKind});
    rmt::Action chain("chain");
    chain.clear_chain();
    for (int i = 0; i < chain_len; ++i) {
      chain.push_hop(topo.aux[static_cast<std::size_t>(i)].value);
    }
    chain.push_hop(topo.dma.value);
    t.add_ternary(0, ~0ull, 1, std::move(chain));  // kPacket == 0
    stage.tables.push_back(std::move(t));
  };
  core::PanicNic nic(cfg, sim);

  workload::TrafficConfig tcfg;
  tcfg.mean_gap_cycles = gap;
  tcfg.max_frames = frames;
  workload::TrafficSource src(
      "gen", &nic.eth_port(0),
      workload::make_min_frame_factory(kClient, kServer), tcfg);
  sim.add(&src);

  // Fixed horizon: just enough to emit every frame plus a short drain.
  // A chain the mesh can sustain delivers ~everything inside it; an
  // unsustainable one leaves a backlog (and queue drops).
  const auto horizon =
      static_cast<Cycles>(gap * static_cast<double>(frames)) + 5000;
  sim.run(horizon);

  const auto snap = sim.snapshot();
  RunResult r;
  r.delivered_ratio =
      static_cast<double>(snap.counter("engine.dma.packets_to_host")) /
      static_cast<double>(frames);
  r.p99 = static_cast<std::uint64_t>(snap.at("engine.dma.host_latency").p99);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_chain_scaling", "latency/throughput vs offload-chain length");
  args.parse(argc, argv);
  std::printf(
      "PANIC reproduction — E5: chain length vs delivered throughput\n");
  const double gap = 12.0;  // ~83 Mpps offered at 500 MHz (~56 Gbps wire)
  const std::uint64_t frames = 4000;
  std::printf("Offered: one 64B frame every %.0f cycles; chain of n\n"
              "pass-through engines before the host.\n",
              gap);

  Report report({"Width", "Chain len", "Delivered/Offered", "p99 (cyc)"});
  for (std::uint32_t width : {64u, 128u}) {
    for (int n : {0, 1, 2, 3, 4, 6, 8}) {
      const auto r = run(width, n, gap, frames);
      report.add_row({strf("%u-bit", width), strf("%d", n),
                      strf("%.3f", r.delivered_ratio),
                      strf("%llu", static_cast<unsigned long long>(r.p99))});
    }
  }
  report.print("Delivered fraction vs chain length (k=5 mesh)");

  std::printf(
      "\nShape check (Table 3): the 64-bit mesh sustains only short chains\n"
      "at this rate before delivery collapses and p99 explodes; doubling\n"
      "the channel width roughly doubles the sustainable chain length.\n");
  return 0;
}
