// Kernel benchmark: wall-clock cost per simulated cycle across the three
// kernels — dense ticking (kStrictTick), the quiescence-aware event kernel
// (kEventDriven), and the sharded parallel kernel (kParallelShards).
//
// Workload shapes on full PANIC NICs:
//   * idle-heavy       — short line-rate bursts separated by long silent
//     gaps (the bursty/interactive shape of real NIC traffic); the event
//     kernel should win big here by fast-forwarding the gaps;
//   * saturated        — continuous near-line-rate load on a 4x4 mesh;
//     nothing ever sleeps, so this pins the event kernel's bookkeeping
//     overhead (wake-coalescing keeps it >= 1x, i.e. no regression);
//   * saturated_16x16  — the same shape on a 16x16 mesh with 100+ engines,
//     additionally swept across 1/2/4/8 shards in parallel mode.  The
//     per-thread speedups are wall-clock measurements on THIS machine:
//     the JSON records hardware_threads so a single-core container's flat
//     numbers aren't mistaken for a scaling regression.
//
// All modes run identical scenarios and their statistics are cross-checked
// (the kernels are cycle-identical by contract), so every speedup is
// measured on provably-equivalent simulations.  Results go to stdout and,
// machine-readable, to BENCH_kernel_speedup.json.
//
// `--threads N` / PANIC_THREADS fixes the shard count recorded in the JSON
// header (the sweep still covers 1/2/4/8).
//
// `--smoke` shrinks the horizons, enables per-message tracing, and writes
// BENCH_kernel_speedup.trace.json (Chrome trace_event format) — used by CI
// to validate the trace export end to end.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/cli.h"
#include "core/panic_nic.h"
#include "net/message_pool.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;

namespace {

bool g_smoke = false;

const Ipv4Addr kBulkClient(10, 2, 0, 9);
const Ipv4Addr kInterClient(10, 1, 0, 2);
const Ipv4Addr kServer(10, 0, 0, 1);

struct RunResult {
  double wall_ms = 0.0;
  double ns_per_cycle = 0.0;
  std::uint64_t component_ticks = 0;
  std::uint64_t fast_forwarded = 0;
  // Stats for the cross-check between modes.
  std::uint64_t delivered = 0;
  std::uint64_t flits = 0;
  std::uint64_t generated = 0;
  // Allocator pressure over the run (message-pool stat deltas).
  std::uint64_t pool_hit = 0;
  std::uint64_t pool_miss = 0;
  std::uint64_t bytes_reused = 0;
  std::string shard_layout = "none";
};

struct Scenario {
  const char* name;
  Cycles on_cycles;
  Cycles off_cycles;
  double gap;
  Cycles cycles;
  int mesh_k = 4;
  int eth_ports = 2;
  int rmt_engines = 2;
  int aux_engines = 0;
  bool parallel_sweep = false;  ///< also run kParallelShards at 1/2/4/8
};

RunResult run_scenario(const Scenario& sc, SimMode mode, int threads = 0) {
  Simulator sim(Frequency::megahertz(500), mode, threads);
  if (g_smoke) sim.telemetry().tracer().enable();
  core::PanicConfig cfg;
  cfg.mesh.k = sc.mesh_k;
  cfg.eth_ports = sc.eth_ports;
  cfg.rmt_engines = sc.rmt_engines;
  cfg.aux_engines = sc.aux_engines;
  cfg.tenant_slacks = {{1, 10}, {2, 100000}};
  core::PanicNic nic(cfg, sim);

  workload::TrafficConfig bulk_cfg;
  bulk_cfg.pattern = workload::ArrivalPattern::kOnOff;
  bulk_cfg.mean_gap_cycles = sc.gap;
  bulk_cfg.on_cycles = sc.on_cycles;
  bulk_cfg.off_cycles = sc.off_cycles;
  bulk_cfg.tenant = TenantId{2};
  bulk_cfg.seed = 99;
  workload::TrafficSource bulk(
      "bulk", &nic.eth_port(1),
      workload::make_udp_factory(kBulkClient, kServer, 1500), bulk_cfg);
  sim.add(&bulk);

  workload::TrafficConfig inter_cfg;
  inter_cfg.pattern = workload::ArrivalPattern::kOnOff;
  inter_cfg.mean_gap_cycles = sc.gap;
  inter_cfg.on_cycles = sc.on_cycles;
  inter_cfg.off_cycles = sc.off_cycles;
  inter_cfg.tenant = TenantId{1};
  inter_cfg.seed = 7;
  workload::TrafficSource inter(
      "interactive", &nic.eth_port(0),
      workload::make_min_frame_factory(kInterClient, kServer), inter_cfg);
  sim.add(&inter);

  const auto pool_before = MessagePool::instance().stats();
  const auto start = std::chrono::steady_clock::now();
  sim.run(sc.cycles);
  const auto stop = std::chrono::steady_clock::now();
  const auto pool_after = MessagePool::instance().stats();

  const auto snap = sim.snapshot();
  RunResult r;
  r.pool_hit = pool_after.pool_hits - pool_before.pool_hits;
  r.pool_miss = pool_after.pool_misses - pool_before.pool_misses;
  r.bytes_reused = pool_after.bytes_reused - pool_before.bytes_reused;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  r.ns_per_cycle = r.wall_ms * 1e6 / static_cast<double>(sc.cycles);
  r.component_ticks = snap.counter("kernel.component_ticks");
  r.fast_forwarded = snap.counter("kernel.fast_forwarded_cycles");
  r.delivered = snap.counter("engine.dma.packets_to_host");
  r.flits = static_cast<std::uint64_t>(snap.value("noc.flits_routed"));
  r.generated =
      static_cast<std::uint64_t>(snap.sum("workload.", ".generated"));
  r.shard_layout = nic.shard_layout();

  if (g_smoke) {
    sim.telemetry().tracer().write_chrome_json(
        "BENCH_kernel_speedup.trace.json", Frequency::megahertz(500));
  }
  return r;
}

/// Best-of-N wall clock (minimum estimates the true cost under scheduler
/// noise; statistics are identical across repetitions by determinism, so
/// any repetition's stats are valid for the cross-checks).
RunResult run_best(const Scenario& sc, SimMode mode, int threads = 0) {
  const int reps = g_smoke ? 1 : 2;
  RunResult best = run_scenario(sc, mode, threads);
  for (int i = 1; i < reps; ++i) {
    RunResult r = run_scenario(sc, mode, threads);
    if (r.wall_ms < best.wall_ms) best = std::move(r);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_kernel_speedup",
                      "dense vs event vs parallel kernel wall-clock");
  args.flag("smoke", "divide horizons by 20 for CI", &g_smoke);
  args.parse(argc, argv);
  const std::uint64_t seed = args.seed();
  const int requested_threads = args.threads();

  // ~2% duty cycle for the idle-heavy shape; the saturated shapes never
  // pause (off=0 keeps every burst back-to-back).  The 16x16 scenario has
  // 100+ engines (8 eth + 8 RMT + 13 fixed + 85 aux) and runs the parallel
  // shard-count sweep.
  Scenario scenarios[] = {
      {"idle_heavy", 1000, 49000, 15.0, 2000000},
      {"saturated", 50000, 0, 15.0, 500000},
      {"saturated_16x16", 50000, 0, 15.0, 100000, 16, 8, 8, 85, true},
  };
  if (g_smoke) {
    for (Scenario& sc : scenarios) sc.cycles /= 20;
  }

  std::string json = "{\n  \"bench\": \"kernel_speedup\",\n  \"seed\": " +
                     std::to_string(seed) + ",\n  \"threads\": " +
                     std::to_string(requested_threads) +
                     ",\n  \"hardware_threads\": " +
                     std::to_string(std::thread::hardware_concurrency()) +
                     ",\n  \"scenarios\": [";
  bool first = true;
  bool ok = true;

  for (const Scenario& sc : scenarios) {
    const RunResult dense = run_best(sc, SimMode::kStrictTick);
    const RunResult event = run_best(sc, SimMode::kEventDriven);
    const double speedup = dense.wall_ms / event.wall_ms;

    // The two kernels must agree — a speedup on a diverging simulation
    // would be meaningless.
    if (dense.delivered != event.delivered || dense.flits != event.flits ||
        dense.generated != event.generated) {
      std::fprintf(stderr, "FAIL %s: dense/event stats diverge\n", sc.name);
      ok = false;
    }

    std::printf("--- %s (%llu cycles, %llu packets) ---\n", sc.name,
                static_cast<unsigned long long>(sc.cycles),
                static_cast<unsigned long long>(event.delivered));
    std::printf("  dense:  %8.1f ms  %7.2f ns/cycle  %12llu ticks\n",
                dense.wall_ms, dense.ns_per_cycle,
                static_cast<unsigned long long>(dense.component_ticks));
    std::printf("  event:  %8.1f ms  %7.2f ns/cycle  %12llu ticks"
                "  (%llu cycles fast-forwarded)\n",
                event.wall_ms, event.ns_per_cycle,
                static_cast<unsigned long long>(event.component_ticks),
                static_cast<unsigned long long>(event.fast_forwarded));
    std::printf("  speedup: %.2fx\n\n", speedup);

    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"name\": \"%s\", \"cycles\": %llu,"
        " \"dense_wall_ms\": %.3f, \"event_wall_ms\": %.3f,"
        " \"dense_ns_per_cycle\": %.3f, \"event_ns_per_cycle\": %.3f,"
        " \"dense_ticks\": %llu, \"event_ticks\": %llu,"
        " \"fast_forwarded_cycles\": %llu, \"speedup\": %.3f,"
        " \"stats_match\": %s,"
        " \"alloc\": {\"pool_hit\": %llu, \"pool_miss\": %llu,"
        " \"bytes_reused\": %llu}}",
        first ? "" : ",", sc.name,
        static_cast<unsigned long long>(sc.cycles), dense.wall_ms,
        event.wall_ms, dense.ns_per_cycle, event.ns_per_cycle,
        static_cast<unsigned long long>(dense.component_ticks),
        static_cast<unsigned long long>(event.component_ticks),
        static_cast<unsigned long long>(event.fast_forwarded), speedup,
        dense.delivered == event.delivered ? "true" : "false",
        static_cast<unsigned long long>(dense.pool_hit + event.pool_hit),
        static_cast<unsigned long long>(dense.pool_miss + event.pool_miss),
        static_cast<unsigned long long>(dense.bytes_reused +
                                        event.bytes_reused));
    json += buf;

    if (sc.parallel_sweep) {
      // Shard-count sweep: kParallelShards at 1/2/4/8 threads, each run
      // cross-checked against the event kernel (bit-identical contract).
      // Speedups are wall-clock on this machine — compare against
      // hardware_threads in the JSON header before reading them as scaling.
      json.erase(json.size() - 1);  // reopen the scenario object ('}')
      json += ", \"parallel_sweep\": [";
      bool sweep_first = true;
      for (const int threads : {1, 2, 4, 8}) {
        const RunResult par = run_best(sc, SimMode::kParallelShards, threads);
        const bool match = par.delivered == event.delivered &&
                           par.flits == event.flits &&
                           par.generated == event.generated;
        if (!match) {
          std::fprintf(stderr, "FAIL %s: parallel(%d) stats diverge\n",
                       sc.name, threads);
          ok = false;
        }
        const double vs_event = event.wall_ms / par.wall_ms;
        std::printf("  parallel x%d: %8.1f ms  %7.2f ns/cycle  "
                    "%.2fx vs event  [%s]%s\n",
                    threads, par.wall_ms, par.ns_per_cycle, vs_event,
                    par.shard_layout.c_str(), match ? "" : "  MISMATCH");
        std::snprintf(
            buf, sizeof(buf),
            "%s\n      {\"threads\": %d, \"wall_ms\": %.3f,"
            " \"ns_per_cycle\": %.3f, \"speedup_vs_event\": %.3f,"
            " \"shard_layout\": \"%s\", \"stats_match\": %s}",
            sweep_first ? "" : ",", threads, par.wall_ms, par.ns_per_cycle,
            vs_event, par.shard_layout.c_str(), match ? "true" : "false");
        json += buf;
        sweep_first = false;
      }
      json += "\n    ]}";
      std::printf("\n");
    }
    first = false;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen("BENCH_kernel_speedup.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_kernel_speedup.json\n");
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
