// Component microbenchmarks (google-benchmark): the per-packet costs of
// every building block, so the cycle-cost models used by the simulator
// can be sanity-checked against real software throughput on the host.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engines/chacha20.h"
#include "engines/checksum_engine.h"
#include "engines/lz77.h"
#include "engines/regex_nfa.h"
#include "engines/sched_queue.h"
#include "net/checksum.h"
#include "net/packet.h"
#include "noc/mesh.h"
#include "rmt/parser.h"
#include "rmt/pipeline.h"
#include "sim/simulator.h"

namespace panic {
namespace {

const Ipv4Addr kSrc(10, 0, 0, 1);
const Ipv4Addr kDst(10, 0, 0, 2);

void BM_ParseFrame(benchmark::State& state) {
  const auto frame = frames::kvs_get(kSrc, kDst, 1, 42, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_frame(frame));
  }
}
BENCHMARK(BM_ParseFrame);

void BM_RmtParser(benchmark::State& state) {
  const auto frame = frames::kvs_get(kSrc, kDst, 1, 42, 7);
  const auto parser = rmt::make_default_parser();
  for (auto _ : state) {
    rmt::Phv phv;
    benchmark::DoNotOptimize(parser.parse(frame, phv));
  }
}
BENCHMARK(BM_RmtParser);

void BM_ChaCha20(benchmark::State& state) {
  std::array<std::uint8_t, 32> key{};
  std::array<std::uint8_t, 12> nonce{};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    engines::ChaCha20 cipher(key, nonce);
    cipher.apply_inplace(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(64)->Arg(1500)->Arg(65536);

void BM_Lz77Compress(benchmark::State& state) {
  Rng rng(1);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = (i / 16) % 2 ? 0x20 : static_cast<std::uint8_t>(rng.next());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engines::lz77_compress(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Lz77Compress)->Arg(1500)->Arg(65536);

void BM_RegexSearch(benchmark::State& state) {
  const auto re = engines::Regex::compile("(UNION|union) +(SELECT|select)");
  std::string haystack(static_cast<std::size_t>(state.range(0)), 'x');
  haystack += "union  select";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re->search(haystack));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(haystack.size()));
}
BENCHMARK(BM_RegexSearch)->Arg(64)->Arg(1500);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(1500, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet_checksum(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1500);
}
BENCHMARK(BM_InternetChecksum);

void BM_Crc32(benchmark::State& state) {
  std::vector<std::uint8_t> data(1500, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1500);
}
BENCHMARK(BM_Crc32);

void BM_SchedQueue(benchmark::State& state) {
  engines::SchedulerQueue q(engines::SchedPolicy::kSlackPriority, 1024);
  Rng rng(3);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      auto msg = make_message();
      msg->slack = static_cast<std::uint32_t>(rng.next() & 0xFFFF);
      q.try_enqueue(std::move(msg), 0);
    }
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(q.dequeue(0));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          128);
}
BENCHMARK(BM_SchedQueue);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(5);
  ZipfDistribution zipf(1000000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_RmtPipelineProcess(benchmark::State& state) {
  auto program = std::make_shared<rmt::RmtProgram>();
  program->parser = rmt::make_default_parser();
  auto& stage = program->add_stage("classify");
  rmt::MatchTable t("t", rmt::MatchKind::kTernary,
                    {rmt::Field::kValidKvs, rmt::Field::kMetaMsgKind});
  t.add_ternary(0, 0, 1, rmt::Action("a").set_slack(5).push_hop(3));
  stage.tables.push_back(std::move(t));
  rmt::Pipeline pipeline(program);

  auto msg = make_message(MessageKind::kPacket);
  msg->data = frames::kvs_get(kSrc, kDst, 1, 42, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.process(*msg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RmtPipelineProcess);

void BM_MeshCycle(benchmark::State& state) {
  // Cost of simulating one cycle of a saturated k x k mesh.
  const int k = static_cast<int>(state.range(0));
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  noc::MeshConfig cfg;
  cfg.k = k;
  noc::Mesh mesh(cfg, sim);
  Rng rng(7);
  for (auto _ : state) {
    for (int t = 0; t < mesh.tiles(); ++t) {
      const EngineId src{static_cast<std::uint16_t>(t)};
      if (mesh.ni(src).can_inject()) {
        auto msg = make_message();
        msg->data.resize(64);
        const EngineId dst{static_cast<std::uint16_t>(rng.uniform_int(
            0, static_cast<std::uint64_t>(mesh.tiles() - 1)))};
        mesh.ni(src).inject(std::move(msg), dst, sim.now());
      }
      while (mesh.ni(src).try_receive(sim.now()) != nullptr) {
      }
    }
    sim.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MeshCycle)->Arg(4)->Arg(8);

}  // namespace
}  // namespace panic

BENCHMARK_MAIN();
