// Hot-path allocation benchmark: wall-clock cost per simulated cycle after
// the zero-allocation work (message pool, ring-buffered queues, flit-burst
// routing), against the pre-pool baseline measured at PR 2 (commit d36886f)
// on the same saturated scenario as bench_kernel_speedup.
//
// Two scenarios, checked in as scenario files:
//   * bench_hotpath_saturated.scenario — continuous near-line-rate
//     overload.  This is the speedup measurement: ns/simulated-cycle
//     against the embedded PR 2 baseline.  (Overload grows the ethernet
//     staging backlog without bound, so pool-miss zero is NOT expected.)
//   * bench_hotpath_steady.scenario — constant-rate load the NIC can
//     sustain.  After a warmup that fills the pool to its steady-state
//     depth, the measured window must complete with ZERO pool misses.
//     This is the machine-independent acceptance check; the bench exits
//     nonzero if any miss occurs.
//
// Both kernel modes run on every scenario and their stats are cross-checked
// (the kernels are cycle-identical by contract).  Results go to stdout and,
// machine-readable, to BENCH_hotpath.json.  `--smoke` shrinks the horizons
// for CI.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cli.h"
#include "net/message_pool.h"
#include "scenario/runner.h"

using namespace panic;

namespace {

// PR 2 baseline (commit d36886f, pre message-pool), measured on this
// machine with bench_kernel_speedup's saturated scenario: the same mesh,
// tenants, sources, and horizon as bench_hotpath_saturated.scenario.
constexpr double kBaselineDenseNsPerCycle = 2628.06;
constexpr double kBaselineEventNsPerCycle = 1902.83;
constexpr const char* kBaselineCommit = "d36886f";

struct RunResult {
  double wall_ms = 0.0;
  double ns_per_cycle = 0.0;
  std::uint64_t component_ticks = 0;
  // Cross-check between modes.
  std::uint64_t delivered = 0;
  std::uint64_t flits = 0;
  std::uint64_t generated = 0;
  // Message-pool deltas over the *measured* window (post-warmup).
  std::uint64_t pool_hit = 0;
  std::uint64_t pool_miss = 0;
  std::uint64_t bytes_reused = 0;
  std::uint64_t live_high_watermark = 0;
  std::string shard_layout = "none";
};

RunResult run_one(const scenario::Scenario& s, SimMode mode,
                  int threads = 0) {
  scenario::RunOptions opts;
  opts.mode = mode;
  opts.threads = threads;
  scenario::ScenarioRun run(s, opts);

  run.run_warmup();

  const auto pool_before = MessagePool::instance().stats();
  const auto start = std::chrono::steady_clock::now();
  run.run_measure();
  const auto stop = std::chrono::steady_clock::now();
  const auto pool_after = MessagePool::instance().stats();

  const auto snap = run.sim().snapshot();
  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  r.ns_per_cycle =
      r.wall_ms * 1e6 / static_cast<double>(s.budget_cycles);
  r.component_ticks = snap.counter("kernel.component_ticks");
  r.delivered = snap.counter("engine.dma.packets_to_host");
  r.flits = static_cast<std::uint64_t>(snap.value("noc.flits_routed"));
  r.generated =
      static_cast<std::uint64_t>(snap.sum("workload.", ".generated"));
  r.pool_hit = pool_after.pool_hits - pool_before.pool_hits;
  r.pool_miss = pool_after.pool_misses - pool_before.pool_misses;
  r.bytes_reused = pool_after.bytes_reused - pool_before.bytes_reused;
  r.live_high_watermark = pool_after.live_high_watermark;
  r.shard_layout = run.nic().shard_layout();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_hotpath",
                      "ns/cycle vs PR2 baseline + zero-alloc acceptance");
  bool smoke = false;
  args.flag("smoke", "divide horizons by 10 for CI", &smoke);
  args.parse(argc, argv);
  const std::uint64_t seed = args.seed();
  const int threads = args.threads();

  struct Leg {
    const char* file;
    bool require_zero_miss;
    scenario::Scenario scenario;
  };
  Leg legs[] = {
      {"bench_hotpath_saturated.scenario", false, {}},
      {"bench_hotpath_steady.scenario", true, {}},
  };
  for (Leg& leg : legs) {
    std::string error;
    auto s = scenario::Scenario::load(
        std::string(PANIC_SCENARIO_DIR "/") + leg.file, &error);
    if (!s.has_value()) {
      std::fprintf(stderr, "cannot load %s: %s\n", leg.file, error.c_str());
      return EXIT_FAILURE;
    }
    leg.scenario = *s;
    if (smoke) {
      leg.scenario.budget_cycles /= 10;
      leg.scenario.warmup_cycles /= 10;
    }
  }

  std::string json = "{\n  \"bench\": \"hotpath\",\n  \"seed\": " +
                     std::to_string(seed) + ",\n  \"threads\": " +
                     std::to_string(threads) + ",\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"baseline\": {\"commit\": \"%s\","
                  " \"dense_ns_per_cycle\": %.2f,"
                  " \"event_ns_per_cycle\": %.2f},\n  \"scenarios\": [",
                  kBaselineCommit, kBaselineDenseNsPerCycle,
                  kBaselineEventNsPerCycle);
    json += buf;
  }

  bool first = true;
  bool ok = true;

  for (const Leg& leg : legs) {
    const scenario::Scenario& sc = leg.scenario;
    const char* name = sc.name.c_str();
    const RunResult dense = run_one(sc, SimMode::kStrictTick);
    const RunResult event = run_one(sc, SimMode::kEventDriven);

    // The two kernels must agree — a speedup on a diverging simulation
    // would be meaningless.
    if (dense.delivered != event.delivered || dense.flits != event.flits ||
        dense.generated != event.generated) {
      std::fprintf(stderr, "FAIL %s: dense/event stats diverge\n", name);
      ok = false;
    }

    // With --threads N (N > 1) the sharded kernel runs as a third leg and
    // must agree with the other two.
    RunResult par;
    if (threads > 1) {
      par = run_one(sc, SimMode::kParallelShards, threads);
      if (par.delivered != event.delivered || par.flits != event.flits ||
          par.generated != event.generated) {
        std::fprintf(stderr, "FAIL %s: parallel/event stats diverge\n",
                     name);
        ok = false;
      }
    }

    // ns/cycle is machine-dependent, so the speedup is only meaningful
    // against the baseline captured on the same machine; the pool-miss
    // check below is the machine-independent acceptance gate.
    const bool saturated = !leg.require_zero_miss;
    const double dense_speedup =
        saturated ? kBaselineDenseNsPerCycle / dense.ns_per_cycle : 0.0;
    const double event_speedup =
        saturated ? kBaselineEventNsPerCycle / event.ns_per_cycle : 0.0;

    std::printf("--- %s (%llu warmup + %llu measured cycles, %llu packets)"
                " ---\n",
                name, static_cast<unsigned long long>(sc.warmup_cycles),
                static_cast<unsigned long long>(sc.budget_cycles),
                static_cast<unsigned long long>(event.delivered));
    std::printf("  dense:  %8.1f ms  %7.2f ns/cycle", dense.wall_ms,
                dense.ns_per_cycle);
    if (saturated)
      std::printf("  (%.2fx vs PR2 baseline %.2f)", dense_speedup,
                  kBaselineDenseNsPerCycle);
    std::printf("\n  event:  %8.1f ms  %7.2f ns/cycle", event.wall_ms,
                event.ns_per_cycle);
    if (saturated)
      std::printf("  (%.2fx vs PR2 baseline %.2f)", event_speedup,
                  kBaselineEventNsPerCycle);
    if (threads > 1) {
      std::printf("\n  parallel(x%d): %8.1f ms  %7.2f ns/cycle  [%s]",
                  threads, par.wall_ms, par.ns_per_cycle,
                  par.shard_layout.c_str());
    }
    std::printf("\n  alloc:  hit %llu + %llu  miss %llu + %llu"
                "  bytes_reused %llu + %llu\n",
                static_cast<unsigned long long>(dense.pool_hit),
                static_cast<unsigned long long>(event.pool_hit),
                static_cast<unsigned long long>(dense.pool_miss),
                static_cast<unsigned long long>(event.pool_miss),
                static_cast<unsigned long long>(dense.bytes_reused),
                static_cast<unsigned long long>(event.bytes_reused));

    if (leg.require_zero_miss) {
      const std::uint64_t misses = dense.pool_miss + event.pool_miss;
      if (misses != 0) {
        std::fprintf(stderr,
                     "FAIL %s: %llu pool misses in the steady-state window"
                     " (hot path allocated)\n",
                     name, static_cast<unsigned long long>(misses));
        ok = false;
      } else {
        std::printf("  steady-state pool-miss: 0 (hot path is"
                    " allocation-free)\n");
      }
    }
    std::printf("\n");

    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"name\": \"%s\", \"warmup\": %llu, \"cycles\": %llu,"
        " \"dense_wall_ms\": %.3f, \"event_wall_ms\": %.3f,"
        " \"dense_ns_per_cycle\": %.3f, \"event_ns_per_cycle\": %.3f,"
        " \"dense_speedup_vs_baseline\": %.3f,"
        " \"event_speedup_vs_baseline\": %.3f,"
        " \"stats_match\": %s,"
        " \"alloc\": {\"dense_pool_hit\": %llu, \"dense_pool_miss\": %llu,"
        " \"event_pool_hit\": %llu, \"event_pool_miss\": %llu,"
        " \"bytes_reused\": %llu, \"live_high_watermark\": %llu}}",
        first ? "" : ",", name,
        static_cast<unsigned long long>(sc.warmup_cycles),
        static_cast<unsigned long long>(sc.budget_cycles), dense.wall_ms,
        event.wall_ms, dense.ns_per_cycle, event.ns_per_cycle, dense_speedup,
        event_speedup,
        dense.delivered == event.delivered ? "true" : "false",
        static_cast<unsigned long long>(dense.pool_hit),
        static_cast<unsigned long long>(dense.pool_miss),
        static_cast<unsigned long long>(event.pool_hit),
        static_cast<unsigned long long>(event.pool_miss),
        static_cast<unsigned long long>(dense.bytes_reused +
                                        event.bytes_reused),
        static_cast<unsigned long long>(event.live_high_watermark));
    json += buf;
    if (threads > 1) {
      json.erase(json.size() - 1);  // reopen the scenario object
      std::snprintf(buf, sizeof(buf),
                    ", \"parallel\": {\"threads\": %d, \"wall_ms\": %.3f,"
                    " \"ns_per_cycle\": %.3f, \"shard_layout\": \"%s\","
                    " \"stats_match\": %s}}",
                    threads, par.wall_ms, par.ns_per_cycle,
                    par.shard_layout.c_str(),
                    par.delivered == event.delivered ? "true" : "false");
      json += buf;
    }
    first = false;
  }

  char tail[64];
  std::snprintf(tail, sizeof(tail), "\n  ],\n  \"pass\": %s\n}\n",
                ok ? "true" : "false");
  json += tail;

  std::FILE* f = std::fopen("BENCH_hotpath.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_hotpath.json\n");
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
