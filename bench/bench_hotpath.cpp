// Hot-path benchmark: wall-clock cost per simulated cycle for the RMT
// fast path, against two embedded baselines measured on this machine:
//   * PR 2 (commit d36886f) — pre message-pool, the original hot path.
//   * PR 7 (commit 6408bb9) — post pool/ring/flit-burst work, pre
//     flow-cache.  The flow-cache acceptance gate is measured against
//     this one: the saturated event-kernel leg must show >= 1.3x.
//
// Two scenarios, checked in as scenario files:
//   * bench_hotpath_saturated.scenario — continuous near-line-rate
//     overload, pool pre-warmed past the live high-watermark.  This is
//     the speedup measurement AND an allocation-free window.
//   * bench_hotpath_steady.scenario — constant-rate load the NIC can
//     sustain; after warmup the measured window must be miss-free.
//
// Every leg runs dense + event kernels (cross-checked: cycle-identical by
// contract), plus an event run with the flow cache disabled.  The cache-on
// and cache-off snapshots must be identical on every metric outside
// rmt.cache.* — the cache is a host-time optimization, never a semantic
// one.  The steady-state cache hit rate must be >= 90%; the bench exits
// nonzero if any gate fails.  Results go to stdout and, machine-readable,
// to BENCH_hotpath.json.  `--smoke` shrinks the horizons for CI.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/cli.h"
#include "net/message_pool.h"
#include "scenario/runner.h"

using namespace panic;

namespace {

// PR 2 baseline (commit d36886f, pre message-pool), measured on this
// machine with bench_kernel_speedup's saturated scenario: the same mesh,
// tenants, sources, and horizon as bench_hotpath_saturated.scenario.
constexpr double kPr2DenseNsPerCycle = 2628.06;
constexpr double kPr2EventNsPerCycle = 1902.83;
constexpr const char* kPr2Commit = "d36886f";

// PR 7 baseline (commit 6408bb9, pre flow-cache), same machine, same
// saturated scenario.  The flow-cache acceptance gate: saturated event
// leg >= 1.3x vs these numbers.
constexpr double kPr7DenseNsPerCycle = 1232.902;
constexpr double kPr7EventNsPerCycle = 1079.405;
constexpr const char* kPr7Commit = "6408bb9";

// Steady-state flow-cache hit-rate floor (machine-independent gate).
constexpr double kMinHitRate = 0.90;

/// Metrics allowed to differ between cache-on and cache-off runs:
/// kernel.* (tick/wakeup bookkeeping and process-wide pool gauges) and the
/// cache's own rmt.cache.* namespace.  Everything else must be identical.
bool excluded_from_cache_diff(const std::string& name) {
  return name.rfind("kernel.", 0) == 0 || name.rfind("rmt.cache.", 0) == 0;
}

struct RunResult {
  double wall_ms = 0.0;
  double ns_per_cycle = 0.0;
  std::uint64_t component_ticks = 0;
  // Cross-check between modes.
  std::uint64_t delivered = 0;
  std::uint64_t flits = 0;
  std::uint64_t generated = 0;
  // Message-pool deltas over the *measured* window (post-warmup).
  std::uint64_t pool_hit = 0;
  std::uint64_t pool_miss = 0;
  std::uint64_t bytes_reused = 0;
  std::uint64_t live_high_watermark = 0;
  // Flow-cache totals (zero when the cache is off).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::string shard_layout = "none";
  telemetry::MetricsSnapshot snapshot;
};

RunResult run_one(const scenario::Scenario& s, SimMode mode,
                  int threads = 0) {
  scenario::RunOptions opts;
  opts.mode = mode;
  opts.threads = threads;
  scenario::ScenarioRun run(s, opts);

  run.run_warmup();

  const auto pool_before = MessagePool::instance().stats();
  const auto start = std::chrono::steady_clock::now();
  run.run_measure();
  const auto stop = std::chrono::steady_clock::now();
  const auto pool_after = MessagePool::instance().stats();

  RunResult r;
  r.snapshot = run.sim().snapshot();
  const auto& snap = r.snapshot;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  r.ns_per_cycle =
      r.wall_ms * 1e6 / static_cast<double>(s.budget_cycles);
  r.component_ticks = snap.counter("kernel.component_ticks");
  r.delivered = snap.counter("engine.dma.packets_to_host");
  r.flits = static_cast<std::uint64_t>(snap.value("noc.flits_routed"));
  r.generated =
      static_cast<std::uint64_t>(snap.sum("workload.", ".generated"));
  r.pool_hit = pool_after.pool_hits - pool_before.pool_hits;
  r.pool_miss = pool_after.pool_misses - pool_before.pool_misses;
  r.bytes_reused = pool_after.bytes_reused - pool_before.bytes_reused;
  r.live_high_watermark = pool_after.live_high_watermark;
  r.cache_hits =
      static_cast<std::uint64_t>(snap.sum("rmt.cache.", ".hits"));
  r.cache_misses =
      static_cast<std::uint64_t>(snap.sum("rmt.cache.", ".misses"));
  r.shard_layout = run.nic().shard_layout();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_hotpath",
                      "ns/cycle vs PR2/PR7 baselines + flow-cache gates");
  bool smoke = false;
  args.flag("smoke", "divide horizons by 10 for CI", &smoke);
  args.parse(argc, argv);
  const std::uint64_t seed = args.seed();
  const int threads = args.threads();
  const unsigned hardware_threads = std::thread::hardware_concurrency();

  struct Leg {
    const char* file;
    bool saturated;  // speedup leg (vs baselines); steady gates hit rate
    scenario::Scenario scenario;
  };
  Leg legs[] = {
      {"bench_hotpath_saturated.scenario", true, {}},
      {"bench_hotpath_steady.scenario", false, {}},
  };
  for (Leg& leg : legs) {
    std::string error;
    auto s = scenario::Scenario::load(
        std::string(PANIC_SCENARIO_DIR "/") + leg.file, &error);
    if (!s.has_value()) {
      std::fprintf(stderr, "cannot load %s: %s\n", leg.file, error.c_str());
      return EXIT_FAILURE;
    }
    leg.scenario = *s;
    if (smoke) {
      leg.scenario.budget_cycles /= 10;
      leg.scenario.warmup_cycles /= 10;
    }
  }

  std::string json = "{\n  \"bench\": \"hotpath\",\n  \"seed\": " +
                     std::to_string(seed) + ",\n  \"threads\": " +
                     std::to_string(threads) +
                     ",\n  \"hardware_threads\": " +
                     std::to_string(hardware_threads) + ",\n";
  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  \"baselines\": {\n"
        "    \"pr2\": {\"commit\": \"%s\", \"dense_ns_per_cycle\": %.2f,"
        " \"event_ns_per_cycle\": %.2f},\n"
        "    \"pr7\": {\"commit\": \"%s\", \"dense_ns_per_cycle\": %.3f,"
        " \"event_ns_per_cycle\": %.3f}\n  },\n"
        "  \"min_hit_rate\": %.2f,\n  \"scenarios\": [",
        kPr2Commit, kPr2DenseNsPerCycle, kPr2EventNsPerCycle, kPr7Commit,
        kPr7DenseNsPerCycle, kPr7EventNsPerCycle, kMinHitRate);
    json += buf;
  }

  bool first = true;
  bool ok = true;

  for (const Leg& leg : legs) {
    const scenario::Scenario& sc = leg.scenario;
    const char* name = sc.name.c_str();
    const RunResult dense = run_one(sc, SimMode::kStrictTick);
    const RunResult event = run_one(sc, SimMode::kEventDriven);

    // The two kernels must agree — a speedup on a diverging simulation
    // would be meaningless.
    if (dense.delivered != event.delivered || dense.flits != event.flits ||
        dense.generated != event.generated) {
      std::fprintf(stderr, "FAIL %s: dense/event stats diverge\n", name);
      ok = false;
    }

    // Cache-off control run (event kernel): must be bit-identical on every
    // observable metric — the flow cache may only change host time.
    scenario::Scenario sc_off = sc;
    sc_off.rmt_cache_enabled = false;
    const RunResult off = run_one(sc_off, SimMode::kEventDriven);
    const auto cache_diff =
        event.snapshot.diff_names(off.snapshot, excluded_from_cache_diff);
    bool cache_identical = cache_diff.empty() &&
                           event.delivered == off.delivered &&
                           event.flits == off.flits &&
                           event.generated == off.generated;
    if (!cache_identical) {
      std::fprintf(stderr,
                   "FAIL %s: cache-on/cache-off runs differ on %zu "
                   "metric(s)%s%s\n",
                   name, cache_diff.size(), cache_diff.empty() ? "" : ": ",
                   cache_diff.empty() ? "" : cache_diff.front().c_str());
      ok = false;
    }
    const double cache_speedup =
        event.ns_per_cycle > 0.0 ? off.ns_per_cycle / event.ns_per_cycle
                                 : 0.0;

    const std::uint64_t cache_total = event.cache_hits + event.cache_misses;
    const double hit_rate =
        cache_total > 0
            ? static_cast<double>(event.cache_hits) /
                  static_cast<double>(cache_total)
            : 0.0;
    if (hit_rate < kMinHitRate) {
      std::fprintf(stderr,
                   "FAIL %s: flow-cache hit rate %.4f below %.2f floor\n",
                   name, hit_rate, kMinHitRate);
      ok = false;
    }

    // With --threads N (N > 1) the sharded kernel runs as a fourth leg and
    // must agree with the other two.
    RunResult par;
    if (threads > 1) {
      par = run_one(sc, SimMode::kParallelShards, threads);
      if (par.delivered != event.delivered || par.flits != event.flits ||
          par.generated != event.generated) {
        std::fprintf(stderr, "FAIL %s: parallel/event stats diverge\n",
                     name);
        ok = false;
      }
    }

    // ns/cycle is machine-dependent, so speedups are only meaningful
    // against baselines captured on the same machine; the pool-miss,
    // hit-rate and cache-identity checks are the machine-independent
    // acceptance gates.
    const double dense_vs_pr2 =
        leg.saturated ? kPr2DenseNsPerCycle / dense.ns_per_cycle : 0.0;
    const double event_vs_pr2 =
        leg.saturated ? kPr2EventNsPerCycle / event.ns_per_cycle : 0.0;
    const double dense_vs_pr7 =
        leg.saturated ? kPr7DenseNsPerCycle / dense.ns_per_cycle : 0.0;
    const double event_vs_pr7 =
        leg.saturated ? kPr7EventNsPerCycle / event.ns_per_cycle : 0.0;

    std::printf("--- %s (%llu warmup + %llu measured cycles, %llu packets)"
                " ---\n",
                name, static_cast<unsigned long long>(sc.warmup_cycles),
                static_cast<unsigned long long>(sc.budget_cycles),
                static_cast<unsigned long long>(event.delivered));
    std::printf("  dense:  %8.1f ms  %7.2f ns/cycle", dense.wall_ms,
                dense.ns_per_cycle);
    if (leg.saturated)
      std::printf("  (%.2fx vs PR2, %.2fx vs PR7)", dense_vs_pr2,
                  dense_vs_pr7);
    std::printf("\n  event:  %8.1f ms  %7.2f ns/cycle", event.wall_ms,
                event.ns_per_cycle);
    if (leg.saturated)
      std::printf("  (%.2fx vs PR2, %.2fx vs PR7)", event_vs_pr2,
                  event_vs_pr7);
    std::printf("\n  cache:  hit rate %.4f (%llu hits / %llu misses),"
                " off-leg %7.2f ns/cycle, speedup %.2fx, identical=%s",
                hit_rate, static_cast<unsigned long long>(event.cache_hits),
                static_cast<unsigned long long>(event.cache_misses),
                off.ns_per_cycle, cache_speedup,
                cache_identical ? "yes" : "NO");
    if (threads > 1) {
      std::printf("\n  parallel(x%d): %8.1f ms  %7.2f ns/cycle  [%s]",
                  threads, par.wall_ms, par.ns_per_cycle,
                  par.shard_layout.c_str());
    }
    std::printf("\n  alloc:  hit %llu + %llu  miss %llu + %llu"
                "  bytes_reused %llu + %llu\n",
                static_cast<unsigned long long>(dense.pool_hit),
                static_cast<unsigned long long>(event.pool_hit),
                static_cast<unsigned long long>(dense.pool_miss),
                static_cast<unsigned long long>(event.pool_miss),
                static_cast<unsigned long long>(dense.bytes_reused),
                static_cast<unsigned long long>(event.bytes_reused));

    // Both legs must be allocation-free in the measured window: the steady
    // leg after warmup, the saturated leg via its pool_reserve pre-warm.
    const std::uint64_t misses = dense.pool_miss + event.pool_miss;
    if (misses != 0) {
      std::fprintf(stderr,
                   "FAIL %s: %llu pool misses in the measured window"
                   " (hot path allocated)\n",
                   name, static_cast<unsigned long long>(misses));
      ok = false;
    } else {
      std::printf("  measured-window pool-miss: 0 (hot path is"
                  " allocation-free)\n");
    }
    std::printf("\n");

    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    {\"name\": \"%s\", \"warmup\": %llu, \"cycles\": %llu,"
        " \"dense_wall_ms\": %.3f, \"event_wall_ms\": %.3f,"
        " \"dense_ns_per_cycle\": %.3f, \"event_ns_per_cycle\": %.3f,"
        " \"dense_speedup_vs_pr2\": %.3f, \"event_speedup_vs_pr2\": %.3f,"
        " \"dense_speedup_vs_pr7\": %.3f, \"event_speedup_vs_pr7\": %.3f,"
        " \"stats_match\": %s,"
        " \"cache\": {\"hits\": %llu, \"misses\": %llu,"
        " \"hit_rate\": %.4f, \"off_ns_per_cycle\": %.3f,"
        " \"speedup_vs_off\": %.3f, \"identical\": %s},"
        " \"alloc\": {\"dense_pool_hit\": %llu, \"dense_pool_miss\": %llu,"
        " \"event_pool_hit\": %llu, \"event_pool_miss\": %llu,"
        " \"bytes_reused\": %llu, \"live_high_watermark\": %llu}}",
        first ? "" : ",", name,
        static_cast<unsigned long long>(sc.warmup_cycles),
        static_cast<unsigned long long>(sc.budget_cycles), dense.wall_ms,
        event.wall_ms, dense.ns_per_cycle, event.ns_per_cycle, dense_vs_pr2,
        event_vs_pr2, dense_vs_pr7, event_vs_pr7,
        dense.delivered == event.delivered ? "true" : "false",
        static_cast<unsigned long long>(event.cache_hits),
        static_cast<unsigned long long>(event.cache_misses), hit_rate,
        off.ns_per_cycle, cache_speedup,
        cache_identical ? "true" : "false",
        static_cast<unsigned long long>(dense.pool_hit),
        static_cast<unsigned long long>(dense.pool_miss),
        static_cast<unsigned long long>(event.pool_hit),
        static_cast<unsigned long long>(event.pool_miss),
        static_cast<unsigned long long>(dense.bytes_reused +
                                        event.bytes_reused),
        static_cast<unsigned long long>(event.live_high_watermark));
    json += buf;
    if (threads > 1) {
      json.erase(json.size() - 1);  // reopen the scenario object
      std::snprintf(buf, sizeof(buf),
                    ", \"parallel\": {\"threads\": %d, \"wall_ms\": %.3f,"
                    " \"ns_per_cycle\": %.3f, \"shard_layout\": \"%s\","
                    " \"stats_match\": %s}}",
                    threads, par.wall_ms, par.ns_per_cycle,
                    par.shard_layout.c_str(),
                    par.delivered == event.delivered ? "true" : "false");
      json += buf;
    }
    first = false;
  }

  char tail[64];
  std::snprintf(tail, sizeof(tail), "\n  ],\n  \"pass\": %s\n}\n",
                ok ? "true" : "false");
  json += tail;

  std::FILE* f = std::fopen("BENCH_hotpath.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote BENCH_hotpath.json\n");
  }
  return ok ? EXIT_SUCCESS : EXIT_FAILURE;
}
