// Fault resilience: what one dead engine costs each architecture.
//
// PANIC provisions offloads as interchangeable engines on the NoC; when
// one dies mid-run the RMT pipeline re-steers its chains to an equivalent
// sibling, so the NIC keeps delivering at (nearly) full rate — the only
// casualties are messages already queued inside or in flight toward the
// dead engine, and every one of them is attributed (fate kFaulted), never
// silently lost.  The pipeline ("bump-in-the-wire") baseline has no
// detour around a dead block: wedging the same offload freezes the wire
// and throughput collapses to whatever was delivered before the fault.
//
// Acceptance gate (exit status): PANIC with one of its two parallel
// engines killed 30% into the run must deliver >= 80% of its fault-free
// count, and the run must conserve messages.  Results go to stdout and,
// machine-readable, to BENCH_fault_resilience.json (including the sim
// seed for reproduction).  `--seed N` / PANIC_SEED vary the run;
// `--smoke` shrinks it for CI.
#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/report.h"
#include "baselines/pipeline_nic.h"
#include "common/cli.h"
#include "common/rng.h"
#include "core/panic_nic.h"
#include "fault/invariants.h"
#include "net/packet.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;
using namespace panic::analysis;

namespace {

constexpr std::uint16_t kOffloadPort = 7777;
constexpr Cycles kOffloadCycles = 100;
constexpr double kGap = 120.0;        // offered load: ~83% of the
                                      // offload's capacity, so a small
                                      // backlog exists when the kill lands
constexpr double kKillFraction = 0.3; // fault lands 30% into the run
const Ipv4Addr kClient(10, 1, 0, 2);
const Ipv4Addr kServer(10, 0, 0, 1);

bool g_smoke = false;

struct Result {
  std::uint64_t delivered = 0;
  std::uint64_t faulted = 0;  // casualties attributed to the injected fault
  bool conserved = false;
  std::string shard_layout = "none";
};

Result run_panic(std::uint64_t frames, bool kill_one_engine) {
  fault::ConservationChecker conservation;
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());

  core::PanicConfig cfg;
  cfg.mesh.k = 5;
  cfg.aux_engines = 2;  // the parallel pair; chains nominally use aux0
  cfg.aux_fixed_cycles = kOffloadCycles;
  cfg.customize_program = [](rmt::RmtProgram& program,
                             const core::PanicTopology& topo) {
    auto& stage = program.add_stage("offload_select");
    rmt::MatchTable t("offload_port", rmt::MatchKind::kExact,
                      {rmt::Field::kL4DstPort});
    t.add_exact(kOffloadPort, rmt::Action("to_offload")
                                  .clear_chain()
                                  .push_hop(topo.aux[0].value)
                                  .push_hop(topo.dma.value));
    stage.tables.push_back(std::move(t));
  };
  const auto kill_at =
      static_cast<Cycle>(kGap * static_cast<double>(frames) * kKillFraction);
  if (kill_one_engine) cfg.faults.kill("aux0", kill_at);
  core::PanicNic nic(cfg, sim);

  workload::TrafficConfig tcfg;
  tcfg.mean_gap_cycles = kGap;
  tcfg.max_frames = frames;
  workload::TrafficSource src(
      "gen", &nic.eth_port(0),
      workload::make_udp_factory(kClient, kServer, 256, kOffloadPort), tcfg);
  sim.add(&src);

  auto& m = sim.telemetry().metrics();
  const auto& delivered = m.counter("engine.dma.packets_to_host");
  sim.run_until(
      [&] {
        return delivered + static_cast<std::uint64_t>(
                               conservation.delta().faulted) >= frames;
      },
      static_cast<Cycles>(kGap * static_cast<double>(frames)) + 200000);

  Result r;
  r.delivered = delivered;
  r.faulted = static_cast<std::uint64_t>(conservation.delta().faulted);
  r.conserved = conservation.verify_or_log();
  r.shard_layout = nic.shard_layout();
  return r;
}

Result run_pipeline(std::uint64_t frames, bool wedge_offload) {
  fault::ConservationChecker conservation;
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  baselines::PipelineNicConfig pcfg;
  baselines::PipelineNic nic(
      "pipe", {baselines::slow_offload_spec(kOffloadCycles, kOffloadPort)},
      pcfg, sim);
  const auto kill_at =
      static_cast<Cycle>(kGap * static_cast<double>(frames) * kKillFraction);
  if (wedge_offload) {
    sim.schedule_at(kill_at, [&nic] { nic.wedge_stage("slow"); });
  }

  auto& m = sim.telemetry().metrics();
  const auto& delivered = m.counter("baseline.pipe.delivered");
  const auto& dropped = m.counter("baseline.pipe.dropped");
  // Injections go through the event queue (the baseline has no Ethernet
  // port component): predicate-side injection would be skipped whenever
  // the event kernel fast-forwards an idle wire.
  for (std::uint64_t i = 0; i < frames; ++i) {
    sim.schedule_at(
        1 + static_cast<Cycle>(static_cast<double>(i) * kGap), [&sim, &nic,
                                                                i] {
          nic.inject_rx(frames::min_udp(kClient, kServer,
                                        static_cast<std::uint16_t>(
                                            40000 + i % 512),
                                        kOffloadPort),
                        sim.now(), TenantId{0});
        });
  }
  sim.run_until(
      [&] { return delivered + dropped >= frames; },
      static_cast<Cycles>(kGap * static_cast<double>(frames)) + 200000);

  Result r;
  r.delivered = delivered;
  // Wedged-stage messages are still queued on the wire (live), so the
  // window stays conserved — nothing is silently lost, just stuck.
  r.conserved = conservation.verify_or_log();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_fault_resilience",
                      "PANIC vs pipeline NIC with one dead engine");
  args.flag("smoke", "reduced frame count for CI", &g_smoke);
  args.parse(argc, argv);
  const std::uint64_t seed = args.seed();
  const std::uint64_t frames = g_smoke ? 400 : 2000;

  std::printf("PANIC reproduction — fault resilience (one dead engine)\n");
  std::printf("All traffic needs a %llu-cycle offload; the engine serving\n"
              "it dies %.0f%% into the run.  PANIC re-steers to the\n"
              "equivalent sibling engine; the pipeline NIC has no detour.\n"
              "(seed %llu)\n\n",
              static_cast<unsigned long long>(kOffloadCycles),
              kKillFraction * 100, static_cast<unsigned long long>(seed));

  const Result panic_clean = run_panic(frames, false);
  const Result panic_faulty = run_panic(frames, true);
  const Result pipe_clean = run_pipeline(frames, false);
  const Result pipe_faulty = run_pipeline(frames, true);

  const auto ratio = [](const Result& faulty, const Result& clean) {
    return clean.delivered == 0
               ? 0.0
               : static_cast<double>(faulty.delivered) /
                     static_cast<double>(clean.delivered);
  };
  const double panic_ratio = ratio(panic_faulty, panic_clean);
  const double pipe_ratio = ratio(pipe_faulty, pipe_clean);

  Report report({"Architecture", "fault-free", "one engine dead",
                 "attributed", "throughput kept"});
  report.add_row(
      {"PANIC", strf("%llu", (unsigned long long)panic_clean.delivered),
       strf("%llu", (unsigned long long)panic_faulty.delivered),
       strf("%llu", (unsigned long long)panic_faulty.faulted),
       strf("%.1f%%", panic_ratio * 100)});
  report.add_row(
      {"pipeline (bump-in-wire)",
       strf("%llu", (unsigned long long)pipe_clean.delivered),
       strf("%llu", (unsigned long long)pipe_faulty.delivered), "-",
       strf("%.1f%%", pipe_ratio * 100)});
  report.print("Frames delivered to the host");

  bool ok = true;
  if (panic_ratio < 0.80) {
    std::fprintf(stderr, "FAIL: PANIC kept only %.1f%% of fault-free "
                         "throughput (need >= 80%%)\n",
                 panic_ratio * 100);
    ok = false;
  }
  if (!panic_clean.conserved || !panic_faulty.conserved ||
      !pipe_clean.conserved || !pipe_faulty.conserved) {
    std::fprintf(stderr, "FAIL: a run violated message conservation\n");
    ok = false;
  }
  // Every frame PANIC didn't deliver under the fault must be attributed.
  if (panic_faulty.delivered + panic_faulty.faulted != frames) {
    std::fprintf(stderr,
                 "FAIL: %llu frames unaccounted for under the fault\n",
                 static_cast<unsigned long long>(
                     frames - panic_faulty.delivered - panic_faulty.faulted));
    ok = false;
  }

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n  \"bench\": \"fault_resilience\",\n  \"seed\": %llu,\n"
      "  \"threads\": %d,\n  \"shard_layout\": \"%s\",\n"
      "  \"frames\": %llu,\n  \"offload_cycles\": %llu,\n"
      "  \"kill_fraction\": %.2f,\n"
      "  \"panic\": {\"clean\": %llu, \"faulty\": %llu, \"faulted\": %llu,"
      " \"ratio\": %.4f, \"conserved\": %s},\n"
      "  \"pipeline\": {\"clean\": %llu, \"faulty\": %llu, \"ratio\": %.4f,"
      " \"conserved\": %s},\n  \"pass\": %s\n}\n",
      static_cast<unsigned long long>(seed), args.threads(),
      panic_clean.shard_layout.c_str(),
      static_cast<unsigned long long>(frames),
      static_cast<unsigned long long>(kOffloadCycles), kKillFraction,
      static_cast<unsigned long long>(panic_clean.delivered),
      static_cast<unsigned long long>(panic_faulty.delivered),
      static_cast<unsigned long long>(panic_faulty.faulted), panic_ratio,
      panic_clean.conserved && panic_faulty.conserved ? "true" : "false",
      static_cast<unsigned long long>(pipe_clean.delivered),
      static_cast<unsigned long long>(pipe_faulty.delivered), pipe_ratio,
      pipe_clean.conserved && pipe_faulty.conserved ? "true" : "false",
      ok ? "true" : "false");
  if (std::FILE* f = std::fopen("BENCH_fault_resilience.json", "w")) {
    std::fputs(json, f);
    std::fclose(f);
    std::printf("\nwrote BENCH_fault_resilience.json\n");
  }

  std::printf("\nShape check: PANIC keeps >= 80%% of its fault-free "
              "throughput (re-steered to the sibling engine, casualties "
              "attributed); the pipeline NIC freezes at the wedge and "
              "collapses to ~%.0f%%.\n", kKillFraction * 100);
  return ok ? 0 : 1;
}
