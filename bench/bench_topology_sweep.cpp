// §6 open question: "What is the best on-chip topology?"  A sweep over
// mesh sizes: analytic capacity/bisection vs NIC-level sustained
// throughput and unloaded host latency.  Bigger meshes buy bandwidth
// (capacity grows with k) at the cost of hop latency (diameter grows
// with k) and area (tiles grow with k^2) — the trade the paper leaves
// open.
//
// Each design point is a Scenario — the same schema `panic_run`
// executes — built programmatically and round-tripped through the
// scenario text format before running, so the sweep doubles as a
// serialization check and any point can be dumped and re-run standalone.
// The chain of pass-through aux engines scales with the mesh
// (min(k^2 - 14, 2k) hops), mirroring the analytic "chain length"
// column: a k x k mesh earns its area only if it sustains a
// proportionally longer chain.  k=3 is out of the sweep: the 11 fixed
// engines plus ports/RMT don't fit 9 tiles, so it is not a buildable
// NIC design point (the raw-mesh capacity model still covers it).
//
// The routing ablation reruns the k=6 point with `routing westfirst`
// — the scenario language's routing axis — against deterministic XY.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.h"
#include "common/cli.h"
#include "noc/mesh_model.h"
#include "scenario/runner.h"

using namespace panic;
using namespace panic::analysis;

namespace {

struct SweepResult {
  double delivered_ratio;    // delivered / offered over the whole run
  double unloaded_latency;   // single-frame ingress->host, cycles
};

/// Chain depth for a k x k mesh: every spare tile up to 2k hops, so the
/// offered chain grows with the mesh the way the analytic chain-length
/// column says it should.
int chain_for(int k) { return std::min(k * k - 14, 2 * k); }

/// One design point of the sweep as a self-contained scenario.
scenario::Scenario make_point(int k, noc::RoutingAlgo routing, double gap,
                              std::uint64_t frames) {
  const int chain = chain_for(k);
  scenario::Scenario s;
  s.name = strf("topology_sweep_k%d%s", k,
                routing == noc::RoutingAlgo::kWestFirst ? "_wf" : "");
  s.mesh_k = k;
  s.routing = routing;
  s.eth_ports = 2;
  s.rmt_engines = 1;
  s.aux_engines = chain;
  s.aux_fixed_cycles = 1;  // pass-through: the NoC is the resource
  s.dma_base_latency = 2;  // fast host path so DMA never dominates
  s.dma_bytes_per_cycle = 256.0;
  s.budget_cycles =
      static_cast<Cycles>(gap * static_cast<double>(frames)) + 10000;

  for (int port = 0; port < s.eth_ports; ++port) {
    scenario::WorkloadSpec w;
    w.name = strf("gen%d", port);
    w.port = port;
    w.kind = scenario::WorkloadSpec::Kind::kMinFrame;
    w.pattern = workload::ArrivalPattern::kConstantRate;
    w.mean_gap_cycles = gap;
    w.max_frames = frames;
    w.seed = static_cast<std::uint64_t>(port + 1);
    s.workloads.push_back(w);
  }

  // Every packet walks the full aux chain before the host; aux<N>/dma
  // resolve through the topology symbol table.
  std::string hops;
  for (int i = 0; i < chain; ++i) hops += strf("aux%d, ", i);
  s.program = strf(
      "stage sweep_chain {\n"
      "  table chain ternary(meta.msg_kind) {\n"
      "    0 prio 1 -> clear_chain, chain(%sdma);\n"
      "  }\n"
      "}\n",
      hops.c_str());
  return s;
}

/// Round-trips the point through the text format, then returns it.
scenario::Scenario round_trip(const scenario::Scenario& s) {
  std::string error;
  const auto reparsed = scenario::Scenario::parse(s.to_string(), &error);
  if (!reparsed.has_value() || reparsed->to_string() != s.to_string()) {
    std::fprintf(stderr, "scenario round-trip failed for %s: %s\n",
                 s.name.c_str(), error.c_str());
    std::exit(EXIT_FAILURE);
  }
  return *reparsed;
}

double run_delivered_ratio(const scenario::Scenario& point) {
  const scenario::Scenario s = round_trip(point);
  scenario::RunOptions opts;
  opts.mode = requested_sim_mode();
  scenario::ScenarioRun run(s, opts);
  run.run_all();
  std::uint64_t offered = 0;
  for (const auto& w : s.workloads) offered += w.max_frames;
  const auto snap = run.sim().snapshot();
  return static_cast<double>(snap.counter("engine.dma.packets_to_host")) /
         static_cast<double>(offered);
}

double run_unloaded_latency(scenario::Scenario point) {
  // Same topology, one lonely frame: engine.dma.host_latency is the
  // corner-to-corner figure (wire -> RMT -> full chain -> host).
  point.name += "_unloaded";
  point.workloads.resize(1);
  point.workloads[0].max_frames = 1;
  point.budget_cycles = 20000;
  const scenario::Scenario s = round_trip(point);
  scenario::RunOptions opts;
  opts.mode = requested_sim_mode();
  scenario::ScenarioRun run(s, opts);
  run.run_all();
  return run.sim().snapshot().at("engine.dma.host_latency").mean;
}

SweepResult run(int k, noc::RoutingAlgo routing, double gap,
                std::uint64_t frames) {
  SweepResult r;
  const auto point = make_point(k, routing, gap, frames);
  r.delivered_ratio = run_delivered_ratio(point);
  r.unloaded_latency = run_unloaded_latency(point);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_topology_sweep",
                             "mesh size / port count sweep");
  args.parse(argc, argv);
  std::printf("PANIC reproduction — on-chip topology sweep (Sec 6)\n");
  std::printf(
      "Min-size frames, 128-bit channels, 2 ports, pass-through chain of\n"
      "min(k^2-14, 2k) aux engines; every design point is a round-tripped\n"
      "scenario.  (k=3 omitted: 14 fixed engines don't fit 9 tiles.)\n");

  const double gap = 12.0;     // per port: ~83 Mpps aggregate at 500 MHz
  const std::uint64_t frames = 2000;

  Report report({"Topo", "Tiles", "Capacity 4bk", "Chain aux",
                 "Delivered/Offered", "Unloaded latency (cyc)",
                 "Chain len @100Gx2"});
  for (int k : {4, 5, 6, 8, 10}) {
    const std::uint32_t width = 128;
    const auto r = run(k, noc::RoutingAlgo::kXY, gap, frames);
    noc::MeshModelInput in;
    in.k = k;
    in.channel_bits = width;
    in.line_rate = DataRate::gbps(100);
    in.ports = 2;
    const auto model = noc::evaluate_mesh_model(in);
    report.add_row(
        {strf("%dx%d", k, k), strf("%d", k * k),
         strf("%.0f b/cyc", 4.0 * width * k), strf("%d", chain_for(k)),
         strf("%.3f", r.delivered_ratio), strf("%.0f", r.unloaded_latency),
         strf("%.2f", model.chain_length)});
  }
  report.print("Mesh size trade-off: bandwidth grows ~k, latency grows ~k");

  // Routing ablation: XY vs west-first adaptive on the 6x6 point.
  Report routing({"Routing", "Delivered/Offered", "Unloaded latency (cyc)"});
  for (auto algo : {noc::RoutingAlgo::kXY, noc::RoutingAlgo::kWestFirst}) {
    const auto r = run(6, algo, gap, frames);
    routing.add_row({algo == noc::RoutingAlgo::kXY ? "XY (deterministic)"
                                                   : "west-first (adaptive)",
                     strf("%.3f", r.delivered_ratio),
                     strf("%.0f", r.unloaded_latency)});
  }
  routing.print("Routing algorithm ablation (6x6, chained load)");

  std::printf(
      "\nShape check: capacity (and the sustainable chain length) grows\n"
      "linearly with k while unloaded latency also grows with k — the\n"
      "paper's Table 3 picks 6x6/8x8 as the sweet spots for 2-port NICs.\n");
  return 0;
}
