// §6 open question: "What is the best on-chip topology?"  A sweep over
// mesh sizes: analytic capacity/bisection vs flit-level saturation
// throughput and unloaded latency.  Bigger meshes buy bandwidth (capacity
// grows with k) at the cost of hop latency (diameter grows with k) and
// area (tiles grow with k^2) — the trade the paper leaves open.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "common/rng.h"
#include "noc/mesh.h"
#include "noc/mesh_model.h"
#include "sim/simulator.h"

using namespace panic;
using namespace panic::analysis;

namespace {

struct SweepResult {
  double sim_bits_per_cycle;
  double unloaded_latency;  // corner-to-corner, cycles
};

SweepResult run(int k, std::uint32_t width) {
  SweepResult r{};
  // Saturation throughput under uniform random traffic.
  {
    Simulator sim(Frequency::megahertz(500), requested_sim_mode());
    noc::MeshConfig cfg;
    cfg.k = k;
    cfg.channel_bits = width;
    noc::Mesh mesh(cfg, sim);
    Rng rng(99);
    std::uint64_t bits = 0;
    const Cycles warmup = 2000, window = 10000;
    for (Cycles c = 0; c < warmup + window; ++c) {
      for (int t = 0; t < mesh.tiles(); ++t) {
        const EngineId src{static_cast<std::uint16_t>(t)};
        while (mesh.ni(src).can_inject()) {
          const EngineId dst{static_cast<std::uint16_t>(rng.uniform_int(
              0, static_cast<std::uint64_t>(mesh.tiles() - 1)))};
          auto msg = make_message();
          msg->data.resize(64);
          mesh.ni(src).inject(std::move(msg), dst, sim.now());
        }
        while (auto msg = mesh.ni(src).try_receive(sim.now())) {
          if (c >= warmup) bits += msg->wire_size() * 8;
        }
      }
      sim.step();
    }
    r.sim_bits_per_cycle = static_cast<double>(bits) / window;
  }
  // Unloaded corner-to-corner latency.
  {
    Simulator sim(Frequency::megahertz(500), requested_sim_mode());
    noc::MeshConfig cfg;
    cfg.k = k;
    cfg.channel_bits = width;
    noc::Mesh mesh(cfg, sim);
    auto msg = make_message();
    msg->data.resize(64);
    const EngineId src = mesh.tile_id(0, 0);
    const EngineId dst = mesh.tile_id(k - 1, k - 1);
    mesh.ni(src).inject(std::move(msg), dst, sim.now());
    sim.run_until(
        [&] { return mesh.ni(dst).try_receive(sim.now()) != nullptr; },
        100000);
    r.unloaded_latency = static_cast<double>(sim.now());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_topology_sweep", "mesh size / port count sweep");
  args.parse(argc, argv);
  std::printf("PANIC reproduction — on-chip topology sweep (Sec 6)\n");
  std::printf("64B messages, 128-bit channels, uniform random traffic.\n");

  Report report({"Topo", "Tiles", "Capacity 4bk", "Simulated sat.",
                 "Corner latency (cyc)", "Chain len @100Gx2"});
  for (int k : {3, 4, 5, 6, 8, 10}) {
    const std::uint32_t width = 128;
    const auto r = run(k, width);
    noc::MeshModelInput in;
    in.k = k;
    in.channel_bits = width;
    in.line_rate = DataRate::gbps(100);
    in.ports = 2;
    const auto model = noc::evaluate_mesh_model(in);
    report.add_row(
        {strf("%dx%d", k, k), strf("%d", k * k),
         strf("%.0f b/cyc", 4.0 * width * k),
         strf("%.0f b/cyc", r.sim_bits_per_cycle),
         strf("%.0f", r.unloaded_latency),
         strf("%.2f", model.chain_length)});
  }
  report.print("Mesh size trade-off: bandwidth grows ~k, latency grows ~k");

  // Routing ablation: XY vs west-first adaptive under adversarial
  // transpose traffic ((x,y) -> (y,x)).
  Report routing({"Routing", "Transpose delivered (msgs/10k cyc)"});
  for (auto algo : {noc::RoutingAlgo::kXY, noc::RoutingAlgo::kWestFirst}) {
    Simulator sim(Frequency::megahertz(500), requested_sim_mode());
    noc::MeshConfig cfg;
    cfg.k = 6;
    cfg.channel_bits = 64;
    cfg.routing = algo;
    noc::Mesh mesh(cfg, sim);
    std::uint64_t delivered = 0;
    const Cycles warmup = 2000, window = 10000;
    for (Cycles c = 0; c < warmup + window; ++c) {
      for (int y = 0; y < cfg.k; ++y) {
        for (int x = 0; x < cfg.k; ++x) {
          if (x == y) continue;
          const EngineId src = mesh.tile_id(x, y);
          if (mesh.ni(src).can_inject()) {
            auto msg = make_message();
            msg->data.resize(64);
            mesh.ni(src).inject(std::move(msg), mesh.tile_id(y, x),
                                sim.now());
          }
          while (mesh.ni(src).try_receive(sim.now()) != nullptr) {
            if (c >= warmup) ++delivered;
          }
        }
      }
      sim.step();
    }
    routing.add_row({algo == noc::RoutingAlgo::kXY ? "XY (deterministic)"
                                                   : "west-first (adaptive)",
                     strf("%llu", static_cast<unsigned long long>(delivered))});
  }
  routing.print("Routing algorithm ablation (6x6, transpose traffic)");

  std::printf(
      "\nShape check: capacity (and the sustainable chain length) grows\n"
      "linearly with k while worst-case latency also grows with k — the\n"
      "paper's Table 3 picks 6x6/8x8 as the sweet spots for 2-port NICs.\n");
  return 0;
}
