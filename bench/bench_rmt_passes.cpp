// E6 — lightweight lookup tables vs per-hop RMT traversal (§3.1.2).
//
// PANIC's RMT pipeline computes the WHOLE chain in one pass and stamps it
// as a lightweight header; engines forward hop-to-hop without re-entering
// the pipeline.  The ablation ("no lookup tables") re-enters the pipeline
// after every engine, which the pipeline supports here by walking the IP
// TTL field: each pass matches the current TTL, pushes one hop, and
// decrements the TTL (deparsed back into the packet).  The measured RMT
// passes/packet and the saturation throughput show why the paper needs
// the lookup tables: pipeline capacity divides by passes-per-packet.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;
using namespace panic::analysis;

namespace {

const Ipv4Addr kClient(10, 1, 0, 2);
const Ipv4Addr kServer(10, 0, 0, 1);
constexpr std::uint64_t kInitialTtl = 64;

core::PanicConfig base_config(int chain_len) {
  core::PanicConfig cfg;
  cfg.mesh.k = 5;
  cfg.mesh.channel_bits = 256;  // NoC generously provisioned
  cfg.aux_engines = chain_len;
  cfg.aux_fixed_cycles = 1;
  cfg.dma.base_latency = 0;  // ~1-cycle DMA so the pipeline is the limit
  cfg.dma.bytes_per_cycle = 256.0;
  cfg.rmt_input_queue = 8192;
  return cfg;
}

/// Mode A: full chain in one pass (PANIC with lightweight lookup tables).
void customize_chained(rmt::RmtProgram& program,
                       const core::PanicTopology& topo, int chain_len) {
  auto& stage = program.add_stage("chain");
  rmt::MatchTable t("chain", rmt::MatchKind::kTernary,
                    {rmt::Field::kMetaMsgKind});
  rmt::Action chain("full_chain");
  chain.clear_chain();
  for (int i = 0; i < chain_len; ++i) {
    chain.push_hop(topo.aux[static_cast<std::size_t>(i)].value);
  }
  chain.push_hop(topo.dma.value);
  t.add_ternary(0, ~0ull, 1, std::move(chain));
  stage.tables.push_back(std::move(t));
}

/// Mode B: one hop per pass — each pass pushes the next engine only and
/// decrements the TTL; engines default-route back to the RMT pipeline.
void customize_per_hop(rmt::RmtProgram& program,
                       const core::PanicTopology& topo, int chain_len) {
  auto& stage = program.add_stage("ttl_walk");
  rmt::MatchTable t("ttl_walk", rmt::MatchKind::kExact,
                    {rmt::Field::kIpTtl});
  for (int i = 0; i < chain_len; ++i) {
    rmt::Action step("step" + std::to_string(i));
    step.clear_chain()
        .push_hop(topo.aux[static_cast<std::size_t>(i)].value)
        .add_imm(rmt::Field::kIpTtl, 0xFF)  // TTL -= 1 (mod 256)
        .and_imm(rmt::Field::kIpTtl, 0xFF);
    t.add_exact(kInitialTtl - static_cast<std::uint64_t>(i),
                std::move(step));
  }
  rmt::Action finish("to_host");
  finish.clear_chain().push_hop(topo.dma.value);
  t.add_exact(kInitialTtl - static_cast<std::uint64_t>(chain_len),
              std::move(finish));
  stage.tables.push_back(std::move(t));
}

struct ModeResult {
  double passes_per_packet;
  std::uint64_t mean_latency;
};

/// Light load so queues never drop: the passes/packet and added latency
/// are measured clean, and pipeline capacity follows from the F*P law.
ModeResult run(bool per_hop, int chain_len) {
  auto cfg = base_config(chain_len);
  cfg.customize_program = [=](rmt::RmtProgram& p,
                              const core::PanicTopology& t) {
    if (per_hop) {
      customize_per_hop(p, t, chain_len);
    } else {
      customize_chained(p, t, chain_len);
    }
  };
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicNic nic(cfg, sim);

  workload::TrafficConfig tcfg;
  tcfg.mean_gap_cycles = 50.0;
  tcfg.max_frames = 1000;
  workload::TrafficSource src(
      "gen", &nic.eth_port(0),
      workload::make_min_frame_factory(kClient, kServer), tcfg);
  sim.add(&src);

  const auto& to_host =
      sim.telemetry().metrics().counter("engine.dma.packets_to_host");
  sim.run_until([&] { return to_host >= tcfg.max_frames; }, 1000000);

  const auto snap = sim.snapshot();
  ModeResult r;
  const auto delivered = snap.counter("engine.dma.packets_to_host");
  r.passes_per_packet =
      static_cast<double>(snap.sum("rmt.", ".processed")) /
      static_cast<double>(delivered ? delivered : 1);
  r.mean_latency =
      static_cast<std::uint64_t>(snap.at("engine.dma.host_latency").mean);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_rmt_passes", "RMT pass counts per packet class");
  args.parse(argc, argv);
  std::printf(
      "PANIC reproduction — E6: RMT passes with/without lookup tables\n");

  Report report({"Chain len", "Mode", "RMT passes/pkt",
                 "mean latency (cyc)", "implied max pps (F*P=2x500MHz)"});
  for (int n : {1, 2, 4, 6}) {
    for (bool per_hop : {false, true}) {
      const auto r = run(per_hop, n);
      report.add_row(
          {strf("%d", n),
           per_hop ? "per-hop RMT re-entry (ablation)"
                   : "lightweight lookup tables (PANIC)",
           strf("%.2f", r.passes_per_packet),
           strf("%llu", static_cast<unsigned long long>(r.mean_latency)),
           strf("%.0fMpps", 1000.0 / r.passes_per_packet)});
    }
  }
  report.print("One heavyweight pass vs one pass per hop (light load)");

  std::printf(
      "\nShape check: with lookup tables every packet costs 1 pipeline\n"
      "pass regardless of chain length; without them it costs n+1 passes,\n"
      "dividing deliverable throughput accordingly and inflating latency\n"
      "(each re-entry adds pipeline latency + queueing) — the paper's\n"
      "argument for distributing the logical switch (Sec 3.1.2).\n");
  return 0;
}
