// E3 — per-packet coordination latency (§2.3.2): the manycore baseline
// pays an embedded-CPU orchestration overhead (~10 µs per Firestone et
// al.); the RMT-only baseline punts heavy work to host software; PANIC's
// logical switch chains engines directly.  We measure unloaded
// single-packet host-delivery latency for (a) plain packets and (b)
// IPSec-encrypted packets on all four architectures.
#include <cstdio>

#include "analysis/report.h"
#include "baselines/manycore_nic.h"
#include "baselines/pipeline_nic.h"
#include "baselines/rmt_nic.h"
#include "common/cli.h"
#include "core/panic_nic.h"
#include "engines/ipsec_engine.h"
#include "net/packet.h"

using namespace panic;
using namespace panic::analysis;

namespace {

const Ipv4Addr kClient(10, 1, 0, 2);
const Ipv4Addr kServer(10, 0, 0, 1);
const Frequency kClock = Frequency::megahertz(500);

std::vector<std::uint8_t> plain() {
  return frames::min_udp(kClient, kServer);
}
std::vector<std::uint8_t> encrypted() {
  return engines::IpsecEngine::encapsulate(plain(), 0x1001, 1);
}

/// Unloaded latency: inject `n` packets one at a time, report the mean of
/// the latency histogram `hist_name` from the simulator's metrics registry
/// (`count_name` is the delivered-packet counter polled between packets).
template <typename InjectFn>
double measure(Simulator& sim, InjectFn inject, const std::string& count_name,
               const std::string& hist_name, int n) {
  const auto& count = sim.telemetry().metrics().counter(count_name);
  for (int i = 0; i < n; ++i) {
    const auto before = count;
    inject();
    sim.run_until([&] { return count > before; }, 1000000);
  }
  return sim.snapshot().at(hist_name).mean;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_orchestration_latency", "chain orchestration latency breakdown");
  args.parse(argc, argv);
  std::printf(
      "PANIC reproduction — E3: coordination latency per architecture\n");
  std::printf("(unloaded; mean of 20 packets; 1 cycle = 2 ns @ 500 MHz)\n");

  Report report({"Architecture", "plain pkt (us)", "IPSec pkt (us)",
                 "plain (cycles)", "IPSec (cycles)"});
  const int n = 20;
  const auto specs = std::vector<baselines::OffloadSpec>{
      baselines::ipsec_offload_spec()};

  double panic_plain = 0, panic_esp = 0;
  {
    Simulator sim(Frequency::megahertz(500), requested_sim_mode());
    core::PanicConfig cfg;
    cfg.mesh.k = 4;
    core::PanicNic nic(cfg, sim);
    panic_plain = measure(
        sim, [&] { nic.inject_rx(0, plain(), sim.now()); },
        "engine.dma.packets_to_host", "engine.dma.host_latency", n);
    Simulator sim2(Frequency::megahertz(500), requested_sim_mode());
    core::PanicNic nic2(cfg, sim2);
    panic_esp = measure(
        sim2, [&] { nic2.inject_rx(0, encrypted(), sim2.now()); },
        "engine.dma.packets_to_host", "engine.dma.host_latency", n);
    report.add_row({"PANIC", strf("%.2f", panic_plain * 0.002),
                    strf("%.2f", panic_esp * 0.002),
                    strf("%.0f", panic_plain), strf("%.0f", panic_esp)});
  }

  {
    Simulator sim(Frequency::megahertz(500), requested_sim_mode());
    baselines::PipelineNic nic("pipe", specs, baselines::PipelineNicConfig{},
                               sim);
    const double lat_plain = measure(
        sim, [&] { nic.inject_rx(plain(), sim.now(), TenantId{0}); },
        "baseline.pipe.delivered", "baseline.pipe.host_latency", n);
    Simulator sim2(Frequency::megahertz(500), requested_sim_mode());
    baselines::PipelineNic nic2("pipe", specs,
                                baselines::PipelineNicConfig{}, sim2);
    const double lat_esp = measure(
        sim2, [&] { nic2.inject_rx(encrypted(), sim2.now(), TenantId{0}); },
        "baseline.pipe.delivered", "baseline.pipe.host_latency", n);
    report.add_row({"pipeline (bump-in-wire)", strf("%.2f", lat_plain * 0.002),
                    strf("%.2f", lat_esp * 0.002), strf("%.0f", lat_plain),
                    strf("%.0f", lat_esp)});
  }

  {
    Simulator sim(Frequency::megahertz(500), requested_sim_mode());
    baselines::ManycoreNicConfig mcfg;  // 5000-cycle (10 us) orchestration
    baselines::ManycoreNic nic("mc", specs, mcfg, sim);
    const double lat_plain = measure(
        sim, [&] { nic.inject_rx(plain(), sim.now(), TenantId{0}); },
        "baseline.mc.delivered", "baseline.mc.host_latency", n);
    Simulator sim2(Frequency::megahertz(500), requested_sim_mode());
    baselines::ManycoreNic nic2("mc", specs, mcfg, sim2);
    const double lat_esp = measure(
        sim2, [&] { nic2.inject_rx(encrypted(), sim2.now(), TenantId{0}); },
        "baseline.mc.delivered", "baseline.mc.host_latency", n);
    report.add_row({"manycore (CPU orchestration)",
                    strf("%.2f", lat_plain * 0.002),
                    strf("%.2f", lat_esp * 0.002), strf("%.0f", lat_plain),
                    strf("%.0f", lat_esp)});
  }

  {
    Simulator sim(Frequency::megahertz(500), requested_sim_mode());
    baselines::RmtNic nic("rmt", specs, baselines::RmtNicConfig{}, sim);
    const double lat_plain = measure(
        sim, [&] { nic.inject_rx(plain(), sim.now(), TenantId{0}); },
        "baseline.rmt.delivered", "baseline.rmt.host_latency", n);
    Simulator sim2(Frequency::megahertz(500), requested_sim_mode());
    baselines::RmtNic nic2("rmt", specs, baselines::RmtNicConfig{}, sim2);
    const double lat_esp = measure(
        sim2, [&] { nic2.inject_rx(encrypted(), sim2.now(), TenantId{0}); },
        "baseline.rmt.delivered", "baseline.rmt.host_latency", n);
    report.add_row({"RMT-only (FlexNIC)", strf("%.2f", lat_plain * 0.002),
                    strf("%.2f", lat_esp * 0.002), strf("%.0f", lat_plain),
                    strf("%.0f", lat_esp)});
  }

  report.print("Unloaded host-delivery latency");

  std::printf(
      "\nShape check (paper, Sec 2.3): the manycore design adds ~10us per\n"
      "packet; the RMT-only design matches PANIC on plain traffic but\n"
      "pays host software costs (~20us) for IPSec it cannot offload;\n"
      "PANIC stays in the sub-microsecond range for plain traffic and\n"
      "adds only the crypto engine's service time for IPSec.\n");
  return 0;
}
