// Table 1 — the offload taxonomy (§2.1).  Not an experiment: the paper
// uses it to argue that all offload classes exist and matter.  This
// binary prints the taxonomy with, for each row, the engine in this
// repository that implements the same offload class — the "reproduction"
// of a taxonomy is covering it.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "core/offload_taxonomy.h"

using namespace panic;
using namespace panic::analysis;

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_table1", "paper Table 1 reproduction");
  args.parse(argc, argv);
  std::printf("PANIC reproduction — Table 1 (offload taxonomy coverage)\n");
  Report report({"Project (paper)", "Scope", "Path", "Kind",
                 "Engine in this repo"});
  for (const auto& row : core::table1_rows()) {
    report.add_row({row.project, to_string(row.scope), to_string(row.path),
                    to_string(row.kind), row.panic_engine});
  }
  report.print("Table 1: offload types of prior work, and our coverage");

  std::printf(
      "\nEvery offload class of Table 1 is represented by at least one\n"
      "engine tile; none required changes to the switch/scheduler — the\n"
      "paper's extensibility claim (Sec 3.1.1).\n");
  return 0;
}
