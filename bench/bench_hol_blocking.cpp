// E2 — head-of-line blocking (§2.3.1): a slow offload used by a fraction
// of the traffic.  In the pipeline ("bump-in-the-wire") NIC every packet
// sits behind the slow offload's queue; in PANIC the RMT pipeline chains
// only the packets that need it, so unrelated traffic is unaffected.
//
// Workload: 10% of packets address UDP port 7777 (the slow offload, 2000
// cycles/packet); 90% are plain mice.  We report the latency of the PLAIN
// packets on each architecture.
#include <cstdio>

#include "analysis/report.h"
#include "baselines/pipeline_nic.h"
#include "common/cli.h"
#include "common/rng.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "workload/traffic_gen.h"

using namespace panic;
using namespace panic::analysis;

namespace {

constexpr std::uint16_t kSlowPort = 7777;
constexpr Cycles kSlowCycles = 2000;
constexpr double kSlowFraction = 0.10;
const Ipv4Addr kClient(10, 1, 0, 2);
const Ipv4Addr kServer(10, 0, 0, 1);

workload::FrameFactory mixed_factory() {
  return [](Rng& rng, std::uint64_t seq) {
    const bool slow = rng.bernoulli(kSlowFraction);
    return frames::min_udp(kClient, kServer,
                           static_cast<std::uint16_t>(40000 + seq % 512),
                           slow ? kSlowPort : 80);
  };
}

struct Result {
  telemetry::MetricValue plain;  // latency summary of delivered packets
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
};

/// Offered load: one packet every `gap` cycles for `frames` frames.
Result run_panic(double gap, std::uint64_t frames) {
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig cfg;
  cfg.mesh.k = 4;
  cfg.aux_engines = 1;
  cfg.aux_fixed_cycles = kSlowCycles;
  cfg.dma.base_latency = 20;  // fast host path: the offload is the only
                              // bottleneck in this experiment
  // Route port-7777 packets through the slow aux engine; others straight
  // to the host (the default program entry).
  cfg.customize_program = [](rmt::RmtProgram& program,
                             const core::PanicTopology& topo) {
    // A stage after "classify" that overrides the default chain for
    // packets addressed to the slow offload's port.
    auto& stage = program.add_stage("slow_select");
    rmt::MatchTable t("slow_port", rmt::MatchKind::kExact,
                      {rmt::Field::kL4DstPort});
    t.add_exact(kSlowPort, rmt::Action("to_slow")
                               .clear_chain()
                               .push_hop(topo.aux[0].value)
                               .push_hop(topo.dma.value));
    stage.tables.push_back(std::move(t));
  };
  core::PanicNic nic(cfg, sim);

  workload::TrafficConfig tcfg;
  tcfg.mean_gap_cycles = gap;
  tcfg.max_frames = frames;
  workload::TrafficSource src("gen", &nic.eth_port(0), mixed_factory(), tcfg);
  sim.add(&src);

  // Live counter handles: cheap to poll from the run_until predicate
  // (no snapshot materialisation per call).
  auto& m = sim.telemetry().metrics();
  const auto& to_host = m.counter("engine.dma.packets_to_host");
  const auto& dma_drops = m.counter("engine.dma.queue.dropped");
  const auto& aux_drops = m.counter("engine.aux0.queue.dropped");
  sim.run_until(
      [&] { return to_host + dma_drops + aux_drops >= frames; },
      static_cast<Cycles>(gap * static_cast<double>(frames)) + 3000000);

  const auto snap = sim.snapshot();
  Result r;
  // Plain packets are the ones whose latency the DMA recorded quickly;
  // separate by port is not tracked there, so use tenant trick: plain and
  // slow share tenant 0.  Instead, use the per-port latency recorded for
  // packets that visited no offload: approximate by filtering via the aux
  // engine count.  Simplest faithful split: rerun classification here.
  r.plain = snap.at("engine.dma.host_latency");
  r.delivered = to_host;
  r.dropped = aux_drops + dma_drops;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_hol_blocking", "head-of-line blocking across engine queues");
  args.parse(argc, argv);
  std::printf("PANIC reproduction — E2: HOL blocking (pipeline vs PANIC)\n");
  std::printf("10%% of packets need a %llu-cycle offload; latencies below\n"
              "are for ALL delivered packets (the slow 10%% dominate the\n"
              "tail in both designs; the pipeline design drags the p50 of\n"
              "everyone else up with it).\n",
              static_cast<unsigned long long>(kSlowCycles));

  Report report({"Architecture", "offered gap", "delivered", "p50", "p90",
                 "p99", "max"});

  for (double gap : {400.0, 150.0, 75.0}) {
    const std::uint64_t frames = 2000;

    // Pipeline NIC baseline.
    {
      Simulator sim(Frequency::megahertz(500), requested_sim_mode());
      baselines::PipelineNicConfig pcfg;
      pcfg.dma_base = 20;  // match PANIC's host path
      baselines::PipelineNic nic(
          "pipe", {baselines::slow_offload_spec(kSlowCycles, kSlowPort)},
          pcfg, sim);
      workload::TrafficConfig tcfg;
      tcfg.mean_gap_cycles = gap;
      tcfg.max_frames = frames;
      Rng rng(tcfg.seed);
      auto factory = mixed_factory();
      auto& m = sim.telemetry().metrics();
      const auto& delivered = m.counter("baseline.pipe.delivered");
      const auto& dropped = m.counter("baseline.pipe.dropped");
      // Drive via events (the baseline has no Ethernet port object).
      double next = 0;
      std::uint64_t sent = 0;
      sim.run_until(
          [&] {
            while (sent < frames &&
                   next <= static_cast<double>(sim.now())) {
              nic.inject_rx(factory(rng, sent), sim.now(), TenantId{0});
              ++sent;
              next += gap;
            }
            return delivered + dropped >= frames;
          },
          static_cast<Cycles>(gap * static_cast<double>(frames)) + 3000000);
      const auto h = sim.snapshot().at("baseline.pipe.host_latency");
      report.add_row({"pipeline (bump-in-wire)", strf("%.0f cyc", gap),
                      strf("%llu", static_cast<unsigned long long>(delivered)),
                      strf("%llu", static_cast<unsigned long long>(h.p50)),
                      strf("%llu", static_cast<unsigned long long>(h.p90)),
                      strf("%llu", static_cast<unsigned long long>(h.p99)),
                      strf("%llu", static_cast<unsigned long long>(h.max))});
    }

    // PANIC.
    {
      const auto r = run_panic(gap, frames);
      const auto& h = r.plain;
      report.add_row({"PANIC", strf("%.0f cyc", gap),
                      strf("%llu", static_cast<unsigned long long>(r.delivered)),
                      strf("%llu", static_cast<unsigned long long>(h.p50)),
                      strf("%llu", static_cast<unsigned long long>(h.p90)),
                      strf("%llu", static_cast<unsigned long long>(h.p99)),
                      strf("%llu", static_cast<unsigned long long>(h.max))});
    }
  }
  report.print("Host-delivery latency (cycles @500MHz; 2 cyc = 4 ns)");

  std::printf(
      "\nShape check: as offered load rises, the pipeline NIC's p50/p90\n"
      "explode (every packet queues behind the slow offload) while PANIC's\n"
      "p50 stays near the unloaded path latency — only the 10%% slow\n"
      "packets (p90+) pay the offload cost.\n");
  return 0;
}
