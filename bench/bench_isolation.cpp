// E4 — performance isolation via slack scheduling (§1, §3.1.3): a
// latency-sensitive tenant shares the (variable-performance) DMA engine
// with a bulk-throughput tenant.  With FIFO queues the mice queue behind
// the bulk burst (the "performance isolation anomaly" of Zhang et al.
// cited by the paper); with PANIC's slack priority queues they overtake.
#include <cstdio>

#include "analysis/report.h"
#include "common/rng.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;
using namespace panic::analysis;

namespace {

const Ipv4Addr kMouseClient(10, 1, 0, 2);
const Ipv4Addr kBulkClient(10, 2, 0, 9);
const Ipv4Addr kServer(10, 0, 0, 1);

struct TenantLatency {
  telemetry::MetricValue mouse;
  telemetry::MetricValue bulk;
  std::uint64_t drops = 0;
};

TenantLatency run(engines::SchedPolicy policy, double bulk_gap) {
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig cfg;
  cfg.mesh.k = 4;
  cfg.sched_policy = policy;
  cfg.tenant_slacks = {{1, 10}, {2, 100000}};  // tenant 1 = mice
  cfg.dma.base_latency = 75;
  cfg.dma.contention_mean = 150.0;  // §3.2 variable DMA performance
  core::PanicNic nic(cfg, sim);

  // Bulk tenant: 1500B frames, heavy on/off bursts.
  workload::TrafficConfig bulk_cfg;
  bulk_cfg.pattern = workload::ArrivalPattern::kOnOff;
  bulk_cfg.mean_gap_cycles = bulk_gap;
  bulk_cfg.on_cycles = 20000;
  bulk_cfg.off_cycles = 5000;
  bulk_cfg.tenant = TenantId{2};
  bulk_cfg.seed = 99;
  workload::TrafficSource bulk(
      "bulk", &nic.eth_port(1),
      workload::make_udp_factory(kBulkClient, kServer, 1500), bulk_cfg);
  sim.add(&bulk);

  // Latency-sensitive tenant: sparse min-size requests.
  workload::TrafficConfig mouse_cfg;
  mouse_cfg.pattern = workload::ArrivalPattern::kPoisson;
  mouse_cfg.mean_gap_cycles = 2000.0;
  mouse_cfg.tenant = TenantId{1};
  mouse_cfg.seed = 7;
  workload::TrafficSource mouse(
      "mouse", &nic.eth_port(0),
      workload::make_min_frame_factory(kMouseClient, kServer), mouse_cfg);
  sim.add(&mouse);

  sim.run(400000);

  const auto snap = sim.snapshot();
  TenantLatency out;
  out.mouse = snap.at("engine.dma.host_latency.tenant.1");
  out.bulk = snap.at("engine.dma.host_latency.tenant.2");
  out.drops = snap.counter("engine.dma.queue.dropped");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  panic::apply_seed_args(argc, argv);
  panic::apply_thread_args(argc, argv);
  std::printf(
      "PANIC reproduction — E4: performance isolation (slack vs FIFO)\n");
  std::printf(
      "Latency-sensitive tenant (64B, sparse) shares the DMA engine with\n"
      "a bursty bulk tenant (1500B).  Cycles @500MHz (2ns/cycle).\n");

  Report report({"Bulk load", "Policy", "mouse p50", "mouse p99",
                 "mouse max", "bulk p50", "mouse n"});
  for (double gap : {40.0, 20.0, 10.0}) {
    for (auto policy : {engines::SchedPolicy::kFifo,
                        engines::SchedPolicy::kSlackPriority}) {
      const auto r = run(policy, gap);
      report.add_row(
          {strf("1/%.0f cyc", gap),
           policy == engines::SchedPolicy::kFifo ? "FIFO (baseline)"
                                                 : "slack (PANIC)",
           strf("%llu", static_cast<unsigned long long>(r.mouse.p50)),
           strf("%llu", static_cast<unsigned long long>(r.mouse.p99)),
           strf("%llu", static_cast<unsigned long long>(r.mouse.max)),
           strf("%llu", static_cast<unsigned long long>(r.bulk.p50)),
           strf("%llu", static_cast<unsigned long long>(r.mouse.count))});
    }
  }
  report.print("Per-tenant host-delivery latency under shared DMA");

  std::printf(
      "\nShape check: under FIFO the mouse tenant's p99 grows with the\n"
      "bulk tenant's queue depth; under slack scheduling it stays near\n"
      "the unloaded DMA latency regardless of bulk load — the paper's\n"
      "claim that slack queues avoid performance-isolation anomalies.\n");
  return 0;
}
