// E4 — performance isolation via slack scheduling (§1, §3.1.3): a
// latency-sensitive tenant shares the (variable-performance) DMA engine
// with a bulk-throughput tenant.  With FIFO queues the mice queue behind
// the bulk burst (the "performance isolation anomaly" of Zhang et al.
// cited by the paper); with PANIC's slack priority queues they overtake.
//
// The base point lives in bench_isolation.scenario; the sweep mutates the
// loaded scenario's bulk gap and scheduling policy.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "scenario/runner.h"

using namespace panic;
using namespace panic::analysis;

namespace {

struct TenantLatency {
  telemetry::MetricValue mouse;
  telemetry::MetricValue bulk;
  std::uint64_t drops = 0;
};

TenantLatency run(const scenario::Scenario& base,
                  const scenario::RunOptions& opts,
                  engines::SchedPolicy policy, double bulk_gap) {
  scenario::Scenario s = base;
  s.sched_policy = policy;
  s.workloads[0].mean_gap_cycles = bulk_gap;  // workload 0 = bulk
  scenario::ScenarioRun r(s, opts);
  r.run_all();

  const auto snap = r.sim().snapshot();
  TenantLatency out;
  out.mouse = snap.at("engine.dma.host_latency.tenant.1");
  out.bulk = snap.at("engine.dma.host_latency.tenant.2");
  out.drops = snap.counter("engine.dma.queue.dropped");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  cli::ArgParser args("bench_isolation",
                      "E4: per-tenant latency, slack vs FIFO");
  args.parse(argc, argv);

  std::string error;
  const auto base = scenario::Scenario::load(
      PANIC_SCENARIO_DIR "/bench_isolation.scenario", &error);
  if (!base.has_value()) {
    std::fprintf(stderr, "cannot load bench_isolation.scenario: %s\n",
                 error.c_str());
    return 1;
  }
  scenario::RunOptions opts;
  opts.mode = args.sim_mode();
  opts.threads = args.threads();

  std::printf(
      "PANIC reproduction — E4: performance isolation (slack vs FIFO)\n");
  std::printf(
      "Latency-sensitive tenant (64B, sparse) shares the DMA engine with\n"
      "a bursty bulk tenant (1500B).  Cycles @500MHz (2ns/cycle).\n");

  Report report({"Bulk load", "Policy", "mouse p50", "mouse p99",
                 "mouse max", "bulk p50", "mouse n"});
  for (double gap : {40.0, 20.0, 10.0}) {
    for (auto policy : {engines::SchedPolicy::kFifo,
                        engines::SchedPolicy::kSlackPriority}) {
      const auto r = run(*base, opts, policy, gap);
      report.add_row(
          {strf("1/%.0f cyc", gap),
           policy == engines::SchedPolicy::kFifo ? "FIFO (baseline)"
                                                 : "slack (PANIC)",
           strf("%llu", static_cast<unsigned long long>(r.mouse.p50)),
           strf("%llu", static_cast<unsigned long long>(r.mouse.p99)),
           strf("%llu", static_cast<unsigned long long>(r.mouse.max)),
           strf("%llu", static_cast<unsigned long long>(r.bulk.p50)),
           strf("%llu", static_cast<unsigned long long>(r.mouse.count))});
    }
  }
  report.print("Per-tenant host-delivery latency under shared DMA");

  std::printf(
      "\nShape check: under FIFO the mouse tenant's p99 grows with the\n"
      "bulk tenant's queue depth; under slack scheduling it stays near\n"
      "the unloaded DMA latency regardless of bulk load — the paper's\n"
      "claim that slack queues avoid performance-isolation anomalies.\n");
  return 0;
}
