// E1 — the §4.2 RMT throughput law, measured: an RMT engine is fully
// pipelined and issues one message per cycle, so P parallel engines
// process P packets/cycle = F*P packets/second.  We drive 1 and 2 RMT
// engines at saturation on a wide-channel mesh (so the NoC is not the
// bottleneck) and check the measured packets/cycle.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;
using namespace panic::analysis;

namespace {

/// Measured aggregate RMT passes/cycle with `rmt_engines` engines fed at
/// saturation from `ports` Ethernet ports.
double measure_rmt_rate(int rmt_engines, int ports) {
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig cfg;
  cfg.mesh.k = 4;
  // 1024-bit channels: a min-size frame is a single flit, so the mesh
  // carries one message per cycle per link and the pipelines saturate.
  cfg.mesh.channel_bits = 1024;
  cfg.eth_ports = ports;
  cfg.rmt_engines = rmt_engines;
  cfg.rmt_input_queue = 4096;
  core::PanicNic nic(cfg, sim);

  std::vector<std::unique_ptr<workload::TrafficSource>> sources;
  for (int p = 0; p < ports; ++p) {
    workload::TrafficConfig tcfg;
    tcfg.mean_gap_cycles = 1.0;  // one frame per cycle per port: saturation
    tcfg.seed = static_cast<std::uint64_t>(p) + 1;
    sources.push_back(std::make_unique<workload::TrafficSource>(
        "gen" + std::to_string(p), &nic.eth_port(p),
        workload::make_min_frame_factory(Ipv4Addr(10, 1, 0, 2),
                                         Ipv4Addr(10, 0, 0, 1)),
        tcfg));
    sim.add(sources.back().get());
  }

  const Cycles warmup = 2000, measure = 20000;
  sim.run(warmup);
  const auto before = sim.snapshot().sum("rmt.", ".processed");
  sim.run(measure);
  return (sim.snapshot().sum("rmt.", ".processed") - before) /
         static_cast<double>(measure);
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_rmt_throughput", "RMT pipeline throughput");
  args.parse(argc, argv);
  std::printf("PANIC reproduction — E1: RMT pipeline throughput = F x P\n");

  Report report({"RMT engines (P)", "Feeding ports", "Measured pkt/cycle",
                 "Model (P)", "pps @500MHz"});
  for (const auto& [engines, ports] :
       std::vector<std::pair<int, int>>{{1, 2}, {2, 2}, {2, 3}}) {
    const double rate = measure_rmt_rate(engines, ports);
    const double expect = std::min(static_cast<double>(engines),
                                   static_cast<double>(ports));
    report.add_row({strf("%d", engines), strf("%d", ports),
                    strf("%.3f", rate), strf("%.0f", expect),
                    strf("%.0fMpps", rate * 500.0)});
  }
  report.print("Measured pipeline issue rate at saturation");

  std::printf(
      "\nShape check: doubling P doubles throughput; with P=2 the measured\n"
      "rate x 500MHz should be ~1000Mpps, matching the paper's claim that\n"
      "two 500MHz pipelines process 1000Mpps >= the 600Mpps a 2-port\n"
      "100GbE NIC needs (Table 2).\n");
  return 0;
}
