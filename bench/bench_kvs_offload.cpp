// E7 — the motivating multi-tenant KVS offload (§2.2, §3.2): Zipf-skewed
// GETs against the on-NIC location cache.  Cache hits are served from the
// NIC via RDMA + DMA-read (CPU bypassed); misses go to host software.
// Sweeps cache capacity (hit rate) and compares the location-cache and
// value-cache designs (a design-choice ablation from §6's open question
// about passing pointers vs whole packets).
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "core/panic_nic.h"
#include "net/packet.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;
using namespace panic::analysis;

namespace {

const Ipv4Addr kClient(10, 1, 0, 2);
const Ipv4Addr kServer(10, 0, 0, 1);

struct KvsResult {
  double hit_rate;
  double cpu_bypass;  // fraction of GETs never delivered to the host
  std::uint64_t reply_p50;
  std::uint64_t reply_p99;
  std::uint64_t replies;
};

KvsResult run(engines::KvsCacheMode mode, std::size_t cache_entries,
              std::uint64_t num_keys, double zipf_skew) {
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig cfg;
  cfg.mesh.k = 4;
  cfg.kvs_mode = mode;
  cfg.kvs_capacity = cache_entries;
  core::PanicNic nic(cfg, sim);

  auto& metrics = sim.telemetry().metrics();
  const auto& to_host = metrics.counter("engine.dma.packets_to_host");
  const auto& kvs_hits = metrics.counter("engine.kvs.hits");
  const auto& kvs_misses = metrics.counter("engine.kvs.misses");

  Histogram reply_latency;
  std::uint64_t replies = 0;
  nic.eth_port(0).set_tx_sink([&](const Message& msg, Cycle now) {
    ++replies;
    if (now >= msg.nic_ingress_at) {
      reply_latency.record(now - msg.nic_ingress_at);
    }
  });

  // Warm the cache with SETs for the hottest `cache_entries` keys, coldest
  // first so LRU keeps the hottest.  (An operator would install hot-key
  // locations the same way; GET misses do not populate the location cache
  // because the host serves them directly.)
  {
    const std::uint64_t warm =
        std::min<std::uint64_t>(cache_entries, num_keys);
    std::uint64_t warm_sets = 0;
    for (std::uint64_t i = 0; i < warm; ++i) {
      const std::uint64_t key = warm - 1 - i;
      nic.inject_rx(0,
                    frames::kvs_set(kClient, kServer, 1, key,
                                    static_cast<std::uint32_t>(key), 128),
                    sim.now());
      ++warm_sets;
      sim.run(150);  // below the DMA engine's service rate
    }
    sim.run_until([&] { return to_host >= warm_sets; }, 4000000);
  }
  const auto host_after_warm = to_host;
  const auto hits0 = kvs_hits;
  const auto misses0 = kvs_misses;

  // Measure: Zipf GET stream.
  workload::KvsWorkloadConfig wcfg;
  wcfg.client = kClient;
  wcfg.server = kServer;
  wcfg.num_keys = num_keys;
  wcfg.zipf_skew = zipf_skew;
  wcfg.value_size = 128;
  wcfg.get_fraction = 1.0;
  workload::TrafficConfig tcfg;
  tcfg.mean_gap_cycles = 300.0;
  tcfg.max_frames = 2000;
  workload::TrafficSource src("gets", &nic.eth_port(0),
                              workload::make_kvs_factory(wcfg), tcfg);
  sim.add(&src);
  sim.run_until(
      [&] {
        const auto served = replies + (to_host - host_after_warm);
        return src.done() && served >= tcfg.max_frames;
      },
      3000000);

  KvsResult r;
  const auto hits = kvs_hits - hits0;
  const auto misses = kvs_misses - misses0;
  const auto gets = hits + misses;
  r.hit_rate = gets ? static_cast<double>(hits) / static_cast<double>(gets)
                    : 0.0;
  // CPU bypass: GETs answered without any host involvement.
  r.cpu_bypass = static_cast<double>(replies) /
                 static_cast<double>(tcfg.max_frames);
  r.reply_p50 = reply_latency.p50();
  r.reply_p99 = reply_latency.p99();
  r.replies = replies;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_kvs_offload", "KVS offload hit-rate and latency");
  args.parse(argc, argv);
  std::printf("PANIC reproduction — E7: on-NIC KVS cache (Sec 2.2 / 3.2)\n");
  std::printf("10k keys, Zipf(0.99) GETs, 128B values; replies served\n"
              "from the NIC via RDMA reads of host memory.\n");

  Report report({"Cache mode", "Entries", "Hit rate", "CPU bypass",
                 "reply p50 (cyc)", "reply p99 (cyc)"});
  for (std::size_t entries : {64, 512, 4096}) {
    const auto r = run(engines::KvsCacheMode::kLocation, entries, 10000,
                       0.99);
    report.add_row({"location (paper)", strf("%zu", entries),
                    strf("%.2f", r.hit_rate), strf("%.2f", r.cpu_bypass),
                    strf("%llu", static_cast<unsigned long long>(r.reply_p50)),
                    strf("%llu", static_cast<unsigned long long>(r.reply_p99))});
  }
  {
    const auto r = run(engines::KvsCacheMode::kValue, 4096, 10000, 0.99);
    report.add_row({"value (ablation)", "4096", strf("%.2f", r.hit_rate),
                    strf("%.2f", r.cpu_bypass),
                    strf("%llu", static_cast<unsigned long long>(r.reply_p50)),
                    strf("%llu", static_cast<unsigned long long>(r.reply_p99))});
  }
  report.print("Hit rate, CPU bypass and reply latency");

  std::printf(
      "\nShape check: hit rate (and hence CPU bypass) grows with cache\n"
      "capacity under the Zipf workload; value-mode replies skip the\n"
      "RDMA/DMA round trip, trading NIC SRAM for latency — the Sec 6\n"
      "pointer-vs-payload open question, quantified.\n");
  return 0;
}
