// The classic NoC characterization behind Table 3's sizing: average and
// tail message latency vs offered load on the on-chip mesh, uniform
// random traffic.  Latency is flat near zero load and diverges as the
// offered load approaches the saturation fraction of the 4bk capacity —
// the series the paper's "sustainable chain length" arithmetic depends
// on staying left of.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "noc/mesh.h"
#include "sim/simulator.h"

using namespace panic;
using namespace panic::analysis;

namespace {

struct Point {
  double offered;     // fraction of per-tile injection capacity
  double accepted;    // messages/tile/cycle actually delivered
  double mean;
  std::uint64_t p99;
};

Point run(int k, std::uint32_t width, double load_fraction) {
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  noc::MeshConfig cfg;
  cfg.k = k;
  cfg.channel_bits = width;
  noc::Mesh mesh(cfg, sim);
  Rng rng(2026);

  const std::size_t payload = 64;
  // Per-tile injection rate in messages/cycle for `load_fraction` of the
  // uniform-traffic capacity C = 4bk: per-tile bits = 4b/k.
  auto probe = make_message();
  probe->data.resize(payload);
  const double msg_bits = static_cast<double>(probe->wire_size()) * 8.0;
  const double per_tile_rate =
      load_fraction * (4.0 * width / k) / msg_bits;

  Histogram latency;
  std::uint64_t delivered = 0;
  double credit = 0;
  const Cycles warmup = 3000, window = 15000;

  for (Cycles c = 0; c < warmup + window; ++c) {
    credit += per_tile_rate * mesh.tiles();
    while (credit >= 1.0) {
      credit -= 1.0;
      const EngineId src{static_cast<std::uint16_t>(
          rng.uniform_int(0, static_cast<std::uint64_t>(mesh.tiles() - 1)))};
      if (!mesh.ni(src).can_inject()) continue;  // open loop: excess lost
      EngineId dst;
      do {
        dst = EngineId{static_cast<std::uint16_t>(rng.uniform_int(
            0, static_cast<std::uint64_t>(mesh.tiles() - 1)))};
      } while (dst == src);
      auto msg = make_message();
      msg->data.resize(payload);
      msg->created_at = sim.now();
      mesh.ni(src).inject(std::move(msg), dst, sim.now());
    }
    for (int t = 0; t < mesh.tiles(); ++t) {
      const EngineId tile{static_cast<std::uint16_t>(t)};
      while (auto msg = mesh.ni(tile).try_receive(sim.now())) {
        if (c >= warmup) {
          ++delivered;
          latency.record(sim.now() - msg->created_at);
        }
      }
    }
    sim.step();
  }

  Point p;
  p.offered = load_fraction;
  p.accepted = static_cast<double>(delivered) /
               static_cast<double>(window) / mesh.tiles();
  p.mean = latency.mean();
  p.p99 = latency.p99();
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_load_latency", "host-delivery latency vs offered load");
  args.parse(argc, argv);
  std::printf(
      "PANIC reproduction — mesh latency vs offered load (Table 3 basis)\n");
  std::printf("6x6 mesh, 128-bit channels, 64B messages, uniform random.\n");

  Report report({"Offered (frac of 4bk)", "Accepted (msg/tile/cyc)",
                 "Mean latency (cyc)", "p99 (cyc)"});
  for (double load : {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    const auto p = run(6, 128, load);
    report.add_row({strf("%.2f", p.offered), strf("%.4f", p.accepted),
                    strf("%.0f", p.mean),
                    strf("%llu", static_cast<unsigned long long>(p.p99))});
  }
  report.print("Load-latency curve");

  std::printf(
      "\nShape check: latency is flat at low load and diverges past the\n"
      "saturation point (~0.45-0.55 of the ideal capacity for single-VC\n"
      "wormhole); Table 3's chain-length budget keeps the NIC on the flat\n"
      "part of this curve.\n");
  return 0;
}
