// Reproduces Table 2: packets-per-second needed for line-rate forwarding
// of minimum-size packets (RX+TX) at different line rates and port counts,
// and checks the §4.2 RMT-pipeline feasibility claims.
#include <cstdio>

#include "analysis/line_rate.h"
#include "analysis/report.h"
#include "common/cli.h"

using namespace panic;
using namespace panic::analysis;

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_table2", "paper Table 2 reproduction");
  args.parse(argc, argv);
  std::printf("PANIC reproduction — Table 2 (line-rate PPS requirements)\n");
  std::printf("Paper values: 240 / 480 / 300 / 600 Mpps (rounded).\n");

  Report report({"Line-rate", "# Eth Ports", "PPS (model)", "PPS (paper)"});
  const double paper[] = {240, 480, 300, 600};
  int i = 0;
  for (const auto& row : table2_rows()) {
    const auto r = evaluate_line_rate(row);
    report.add_row({strf("%.0fGbps", row.line_rate.gigabits_per_second()),
                    strf("%d", row.ports), strf("%.1fMpps", r.total_pps / 1e6),
                    strf("%.0fMpps", paper[i++])});
  }
  report.print("Table 2: min-size line-rate PPS (84B wire size per frame)");

  // §4.2 feasibility: F*P law.
  Report law({"Config", "RMT pps", "Needed pps", "Sustains line rate?"});
  const auto freq = Frequency::megahertz(500);
  for (const auto& row : table2_rows()) {
    for (int pipes : {1, 2}) {
      const auto need = evaluate_line_rate(row).total_pps;
      law.add_row(
          {strf("%.0fG x%d, %d pipeline(s) @500MHz",
                row.line_rate.gigabits_per_second(), row.ports, pipes),
           strf("%.0fMpps", rmt_pipeline_pps(freq, pipes) / 1e6),
           strf("%.1fMpps", need / 1e6),
           rmt_sustains_line_rate(freq, pipes, row) ? "yes" : "NO"});
    }
  }
  law.print("RMT pipeline throughput law (pps = F x P), one pass per packet");

  std::printf(
      "\nKey claim check: 2 pipelines @500MHz = 1000Mpps >= 600Mpps needed\n"
      "for a 2-port 100G NIC -> %s. With 2 passes/packet it would need\n"
      "1200Mpps -> infeasible, which motivates the lightweight lookup\n"
      "tables (see bench_rmt_passes).\n",
      rmt_sustains_line_rate(freq, 2,
                             LineRateInput{DataRate::gbps(100), 2})
          ? "HOLDS"
          : "FAILS");
  return 0;
}
