// §6 open question: "What is the best way to simultaneously provide
// lossless forwarding to ensure that important messages ... are never
// dropped while also providing lossy forwarding to ensure that other
// messages (e.g., packets from a DOS attack) are dropped as needed?"
//
// PANIC's mechanism: drops happen only at the scheduler queues, which see
// the slack of every message.  We compare two drop policies at a flooded
// DMA engine: tail-drop (arrivals dropped when full) vs slack-aware
// eviction (urgent arrivals displace the loosest queued message).
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "core/panic_nic.h"
#include "workload/kvs_workload.h"
#include "workload/traffic_gen.h"

using namespace panic;
using namespace panic::analysis;

namespace {

struct Result {
  double mouse_delivery;   // fraction of urgent packets delivered
  std::uint64_t mouse_p99;
  double flood_delivery;
  std::uint64_t drops;
};

Result run(engines::DropPolicy policy) {
  Simulator sim2(Frequency::megahertz(500), requested_sim_mode());
  core::PanicConfig cfg2;
  cfg2.mesh.k = 4;
  cfg2.tenant_slacks = {{1, 10}, {2, 100000}};
  cfg2.engine_queue_capacity = 32;  // small shared buffer: drops will happen
  cfg2.drop_policy = policy;
  core::PanicNic nic2(cfg2, sim2);

  // Flood: min-size frames at ~1 per 8 cycles (far beyond DMA capacity).
  workload::TrafficConfig flood_cfg;
  flood_cfg.mean_gap_cycles = 8.0;
  flood_cfg.tenant = TenantId{2};
  flood_cfg.max_frames = 20000;
  workload::TrafficSource flood(
      "flood", &nic2.eth_port(1),
      workload::make_udp_factory(Ipv4Addr(10, 9, 9, 9), Ipv4Addr(10, 0, 0, 1),
                                 64),
      flood_cfg);
  sim2.add(&flood);

  // Urgent tenant: sparse requests.
  workload::TrafficConfig mouse_cfg;
  mouse_cfg.pattern = workload::ArrivalPattern::kPoisson;
  mouse_cfg.mean_gap_cycles = 1500.0;
  mouse_cfg.tenant = TenantId{1};
  mouse_cfg.max_frames = 150;
  workload::TrafficSource mouse(
      "mouse", &nic2.eth_port(0),
      workload::make_min_frame_factory(Ipv4Addr(10, 1, 0, 2),
                                       Ipv4Addr(10, 0, 0, 1)),
      mouse_cfg);
  sim2.add(&mouse);

  sim2.run(300000);

  const auto snap = sim2.snapshot();
  Result r;
  // find(): a tenant that never had a packet delivered has no histogram.
  const telemetry::MetricValue empty;
  const auto* f1 = snap.find("engine.dma.host_latency.tenant.1");
  const auto* f2 = snap.find("engine.dma.host_latency.tenant.2");
  const auto& t1 = f1 != nullptr ? *f1 : empty;
  const auto& t2 = f2 != nullptr ? *f2 : empty;
  r.mouse_delivery = static_cast<double>(t1.count) /
                     static_cast<double>(snap.counter("workload.mouse.generated"));
  r.mouse_p99 = static_cast<std::uint64_t>(t1.p99);
  r.flood_delivery = static_cast<double>(t2.count) /
                     static_cast<double>(snap.counter("workload.flood.generated"));
  r.drops = snap.counter("engine.dma.queue.dropped");
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_drop_policy", "drop-on-arrival vs evict-loosest under overload");
  args.parse(argc, argv);
  std::printf(
      "PANIC reproduction — drop policy at the logical scheduler (Sec 6)\n");
  std::printf(
      "A DOS-like flood (tenant 2) overloads the DMA engine's 32-slot\n"
      "queue while an urgent tenant (1) trickles requests.\n");

  Report report({"Drop policy", "urgent delivered", "urgent p99 (cyc)",
                 "flood delivered", "queue drops"});
  for (auto policy : {engines::DropPolicy::kDropArrival,
                      engines::DropPolicy::kEvictLoosest}) {
    const auto r = run(policy);
    report.add_row(
        {policy == engines::DropPolicy::kDropArrival
             ? "tail-drop (baseline)"
             : "slack-aware eviction (PANIC)",
         strf("%.1f%%", 100.0 * r.mouse_delivery),
         strf("%llu", static_cast<unsigned long long>(r.mouse_p99)),
         strf("%.1f%%", 100.0 * r.flood_delivery),
         strf("%llu", static_cast<unsigned long long>(r.drops))});
  }
  report.print("Urgent-traffic survival under flood");

  std::printf(
      "\nShape check: with tail-drop the urgent tenant loses packets\n"
      "whenever the flood keeps the queue full; slack-aware eviction\n"
      "delivers ~100%% of urgent traffic by dropping flood packets\n"
      "instead — lossy and lossless coexisting, selected by slack.\n");
  return 0;
}
