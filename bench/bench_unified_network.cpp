// Ablation of footnote 1 (§3.1): one unified on-chip network vs multiple
// class-partitioned networks of the same aggregate bit width.  With the
// same total wires, the unified network can lend idle capacity to
// whichever traffic class is busy; the split design strands it.
//
// Setup: two traffic classes (packets, DMA requests) on a k x k mesh.
//   unified: one mesh with W-bit channels carrying both classes.
//   split:   two meshes with W/2-bit channels, one class each.
// Load is asymmetric (class A heavy, class B light), the regime where the
// paper's argument bites.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "common/rng.h"
#include "noc/mesh.h"
#include "sim/simulator.h"

using namespace panic;
using namespace panic::analysis;

namespace {

struct Load {
  double class_a;  // messages per tile per cycle (heavy)
  double class_b;  // (light)
};

/// Returns delivered bits/cycle for the given per-class offered loads.
/// `meshes` is 1 (unified) or 2 (split by class).
double simulate(int k, std::uint32_t total_width, int meshes, Load load,
                Cycles warmup, Cycles window) {
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  std::vector<std::unique_ptr<noc::Mesh>> nets;
  const auto width = static_cast<std::uint32_t>(total_width / meshes);
  for (int m = 0; m < meshes; ++m) {
    noc::MeshConfig cfg;
    cfg.k = k;
    cfg.channel_bits = width;
    nets.push_back(std::make_unique<noc::Mesh>(cfg, sim));
  }
  Rng rng(17);
  const int tiles = k * k;

  std::uint64_t delivered_bits = 0;
  double credit_a = 0, credit_b = 0;

  auto inject = [&](noc::Mesh& mesh, std::size_t bytes) {
    for (int t = 0; t < tiles; ++t) {
      const EngineId src{static_cast<std::uint16_t>(t)};
      if (!mesh.ni(src).can_inject()) continue;
      EngineId dst{static_cast<std::uint16_t>(
          rng.uniform_int(0, static_cast<std::uint64_t>(tiles - 1)))};
      auto msg = make_message();
      msg->data.resize(bytes);
      mesh.ni(src).inject(std::move(msg), dst, sim.now());
      return true;
    }
    return false;
  };
  auto drain = [&](noc::Mesh& mesh, bool measuring) {
    for (int t = 0; t < tiles; ++t) {
      const EngineId tile{static_cast<std::uint16_t>(t)};
      while (auto msg = mesh.ni(tile).try_receive(sim.now())) {
        if (measuring) delivered_bits += msg->wire_size() * 8;
      }
    }
  };

  noc::Mesh& net_a = *nets[0];
  noc::Mesh& net_b = *nets[meshes - 1];

  for (Cycles c = 0; c < warmup + window; ++c) {
    const bool measuring = c >= warmup;
    credit_a += load.class_a * tiles;
    credit_b += load.class_b * tiles;
    while (credit_a >= 1.0 && inject(net_a, 64)) credit_a -= 1.0;
    while (credit_b >= 1.0 && inject(net_b, 16)) credit_b -= 1.0;
    if (credit_a > tiles) credit_a = tiles;  // open-loop: excess is lost
    if (credit_b > tiles) credit_b = tiles;
    drain(net_a, measuring);
    if (meshes == 2) drain(net_b, measuring);
    sim.step();
  }
  return static_cast<double>(delivered_bits) / static_cast<double>(window);
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_unified_network", "unified NoC vs split networks");
  args.parse(argc, argv);
  std::printf(
      "PANIC reproduction — unified vs split on-chip network (footnote 1)\n");
  std::printf(
      "Same aggregate wire budget (128 bits/channel); class A = 64B\n"
      "packets (heavy), class B = 16B DMA descriptors (light).\n");

  Report report({"Offered A (msg/tile/cyc)", "Unified (bits/cyc)",
                 "Split (bits/cyc)", "Unified / Split"});
  for (double a : {0.02, 0.05, 0.1, 0.2}) {
    const Load load{a, 0.005};
    const double uni = simulate(4, 128, 1, load, 2000, 12000);
    const double split = simulate(4, 128, 2, load, 2000, 12000);
    report.add_row({strf("%.3f", a), strf("%.0f", uni), strf("%.0f", split),
                    strf("%.2fx", uni / split)});
  }
  report.print("Delivered throughput under asymmetric load");

  std::printf(
      "\nShape check: as class A's load grows past what a half-width\n"
      "network can carry, the unified design keeps scaling (it uses the\n"
      "wires the idle class B network would have stranded) — footnote 1's\n"
      "\"higher peak throughputs for a given aggregate bit width\".\n");
  return 0;
}
