// Reproduces Table 3: bisection bandwidth and sustainable offload-chain
// length of the on-chip 2D mesh, analytically (exactly the paper's
// numbers), then validates the capacity model against the flit-level mesh
// simulator under uniform random traffic.
#include <cstdio>

#include "analysis/report.h"
#include "common/cli.h"
#include "common/rng.h"
#include "noc/mesh.h"
#include "noc/mesh_model.h"
#include "sim/simulator.h"

using namespace panic;
using namespace panic::analysis;

namespace {

/// Saturation throughput of a k x k mesh in bits/cycle under uniform
/// random traffic with `payload` byte messages.
double simulate_saturation(int k, std::uint32_t bits, std::size_t payload,
                           Cycles warmup, Cycles measure) {
  Simulator sim(Frequency::megahertz(500), requested_sim_mode());
  noc::MeshConfig cfg;
  cfg.k = k;
  cfg.channel_bits = bits;
  noc::Mesh mesh(cfg, sim);
  Rng rng(42);

  std::uint64_t delivered_bits = 0;
  auto drive = [&](bool measuring) {
    for (int t = 0; t < mesh.tiles(); ++t) {
      const EngineId src{static_cast<std::uint16_t>(t)};
      while (mesh.ni(src).can_inject()) {
        EngineId dst;
        do {
          dst = EngineId{static_cast<std::uint16_t>(rng.uniform_int(
              0, static_cast<std::uint64_t>(mesh.tiles() - 1)))};
        } while (dst == src);
        auto msg = make_message();
        msg->data.resize(payload);
        mesh.ni(src).inject(std::move(msg), dst, sim.now());
      }
      while (auto msg = mesh.ni(src).try_receive(sim.now())) {
        if (measuring) delivered_bits += msg->wire_size() * 8;
      }
    }
  };
  for (Cycles c = 0; c < warmup; ++c) {
    drive(false);
    sim.step();
  }
  for (Cycles c = 0; c < measure; ++c) {
    drive(true);
    sim.step();
  }
  return static_cast<double>(delivered_bits) / static_cast<double>(measure);
}

}  // namespace

int main(int argc, char** argv) {
  panic::cli::ArgParser args("bench_table3", "paper Table 3 reproduction");
  args.parse(argc, argv);
  std::printf("PANIC reproduction — Table 3 (mesh throughput / chain len)\n");

  Report report({"Line-rate", "Freq", "Bit Width", "Topo", "Bisec BW",
                 "Chain Len", "(paper)"});
  const char* paper[] = {"384Gbps 5.60", "512Gbps 8.80", "768Gbps 3.68",
                         "1024Gbps 6.24"};
  int i = 0;
  for (const auto& in : noc::table3_rows()) {
    const auto r = noc::evaluate_mesh_model(in);
    report.add_row({strf("%.0fGbps x%d", in.line_rate.gigabits_per_second(),
                         in.ports),
                    strf("%.0fMHz", in.freq.mhz()),
                    strf("%u", in.channel_bits),
                    strf("%dx%d Mesh", in.k, in.k),
                    strf("%.0fGbps", r.bisection_bw.gigabits_per_second()),
                    strf("%.2f", r.chain_length), paper[i++]});
  }
  report.print("Table 3 (analytical, matches the paper exactly)");

  // Validation: flit-level simulation vs the 4*b*k capacity bound.
  // Single-VC wormhole routers reach a fraction of the ideal capacity
  // (typically 40-70% for uniform traffic); the model is the bound the
  // paper's sizing uses.
  Report sim_report({"Topo", "Width", "Capacity 4bk (bits/cyc)",
                     "Simulated (bits/cyc)", "Fraction"});
  for (const auto& [k, bits] :
       std::vector<std::pair<int, std::uint32_t>>{{4, 64},
                                                  {6, 64},
                                                  {6, 128},
                                                  {8, 128}}) {
    const double cap = 4.0 * bits * k;
    const double got = simulate_saturation(k, bits, 64, 3000, 15000);
    sim_report.add_row({strf("%dx%d", k, k), strf("%u", bits),
                        strf("%.0f", cap), strf("%.0f", got),
                        strf("%.2f", got / cap)});
  }
  sim_report.print(
      "Flit-level mesh simulation vs analytic capacity (uniform traffic)");
  return 0;
}
